//! The solver machine: a steppable resolution engine with full
//! backtracking, cut, and the parallel-frame protocol the engines build on.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use ace_logic::db::{Database, IndexKey, Predicate};
use ace_logic::sym::{sym, wk};
use ace_logic::term::{view, TermView};
use ace_logic::unify::unify;
use ace_logic::write::term_to_string;
use ace_logic::{
    run_head, CanonKey, Cell, CompiledBody, Heap, StepKind, Sym, TermArena, TrailMark,
};
use ace_memo::{MemoEntry, MemoTable, PublishOutcome};

use crate::arith;
use ace_runtime::{CancelToken, ClauseExec, CostModel, EventKind, Stats};
use ace_table::{RegisterOutcome, TableEntry, TableSpace};

use crate::cont::{self, Cont};
use crate::frames::{Alts, ChoicePoint, CtrlFrame, Marker, MarkerKind, ParcallFrame, SharedChoice};

/// Machine execution status, returned by [`Machine::step`] / [`Machine::run`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Status {
    /// More work to do; call `step`/`run` again.
    Running,
    /// The goal list is exhausted: current bindings are a solution.
    /// Call [`Machine::backtrack`] to search for the next one.
    Solution,
    /// The (sub)computation is exhausted: no (more) solutions.
    Failed,
    /// A parallel conjunction was reached; a fresh [`ParcallFrame`] is on
    /// top of the control stack awaiting the and-engine.
    Parcall,
    /// Backtracking reached a [`ParcallFrame`] from outside (a later goal
    /// failed); the and-engine must produce the next cross-product
    /// solution or declare the frame exhausted.
    ParcallRedo,
    /// The inline (owner-executed) branch of the parallel call with this
    /// frame id arrived at its barrier — either for the first time (join)
    /// or again after local backtracking produced a new solution for it
    /// (the and-engine must then re-integrate its siblings).
    InlineBarrier(u64),
    /// Backtracking crossed a PDO fence: the owner-executed subgoal `slot`
    /// of the parallel call with this frame id is exhausted (inside
    /// failure).
    FenceHit(u64, u32),
    /// Execution was cancelled (sibling failure killed this computation).
    Cancelled,
    /// `halt/0` was executed.
    Halted,
    /// An execution error (undefined predicate, arithmetic fault…).
    Error(String),
}

/// Result of attempting one compiled body step inline (see
/// [`Machine::inline_step`]).
enum StepOutcome {
    /// Step executed; move to the next conjunct.
    Ok,
    /// A deterministic test failed — the body fails here, and nothing
    /// after this conjunct was ever materialized.
    Fail,
    /// Hand this step (and the rest) to the generic machinery.
    NotInline,
}

static PARCALL_IDS: AtomicU64 = AtomicU64::new(1);

/// If `goal` is an `$inline_barrier(Id)` term, return the frame id.
pub(crate) fn view_barrier(heap: &Heap, goal: Cell) -> Option<u64> {
    match view(heap, goal) {
        TermView::Struct(f, 1, hdr) if f == inline_barrier_sym() => {
            match heap.deref(heap.str_arg(hdr, 0)) {
                Cell::Int(i) => Some(i as u64),
                _ => None,
            }
        }
        _ => None,
    }
}

/// Interned `$ite_then` (hot-path comparison in `dispatch`).
fn ite_then_sym() -> Sym {
    static S: std::sync::OnceLock<Sym> = std::sync::OnceLock::new();
    *S.get_or_init(|| sym("$ite_then"))
}

/// Interned `$inline_barrier` (end marker of an inline parcall branch).
fn inline_barrier_sym() -> Sym {
    static S: std::sync::OnceLock<Sym> = std::sync::OnceLock::new();
    *S.get_or_init(|| sym("$inline_barrier"))
}

/// Interned `$memo_store` (answer-publication marker of a watched call).
fn memo_store_sym() -> Sym {
    static S: std::sync::OnceLock<Sym> = std::sync::OnceLock::new();
    *S.get_or_init(|| sym("$memo_store"))
}

/// Interned `$body` (compiled-body continuation marker: remaining steps of
/// a clause body, materialized one goal at a time).
fn body_step_sym() -> Sym {
    static S: std::sync::OnceLock<Sym> = std::sync::OnceLock::new();
    *S.get_or_init(|| sym("$body"))
}

/// Interned `$slots` (frozen slot registers referenced by `$body` markers;
/// a plain structure so closures and state copying relocate it like any
/// term).
fn body_slots_sym() -> Sym {
    static S: std::sync::OnceLock<Sym> = std::sync::OnceLock::new();
    *S.get_or_init(|| sym("$slots"))
}

/// Interned `$table_answer` (answer-insertion marker of a tabled
/// generator's failure-driven derivation loop).
fn table_answer_sym() -> Sym {
    static S: std::sync::OnceLock<Sym> = std::sync::OnceLock::new();
    *S.get_or_init(|| sym("$table_answer"))
}

/// A call being watched for answer memoization: a `$memo_store(Idx, Gen)`
/// goal planted right after the call in the continuation reaches this
/// record when (a derivation of) the call completes. The snapshots decide
/// whether that derivation was *unique* — nothing nondeterministic or
/// effectful happened in between — in which case its single answer is the
/// call's complete answer set and can be published.
struct MemoWatch {
    key: CanonKey,
    /// The call term (instantiated by the time the marker arrives).
    goal: Cell,
    /// Generation tag; a marker whose generation mismatches is stale
    /// (its slot was reclaimed after backtracking discarded the marker).
    gen: u64,
    /// Heap length just after the marker was planted: a heap truncated
    /// below it has destroyed the marker, so the watch is dead.
    heap_tide: usize,
    ctrl_len: usize,
    choice_points: u64,
    parcalls_raised: u64,
    markers: u64,
    output_len: usize,
    answers_len: usize,
}

/// A tabled consumer whose answer cursor ran dry while its subgoal was
/// still incomplete: the goal and continuation are frozen (same closure
/// form as or-parallel state copying) until the leader's fixpoint loop
/// thaws them after new answers land.
struct SuspendedConsumer {
    /// Frozen `$closure(Goal, Cont...)` tuple.
    closure: StateClosure,
    /// Answers already consumed before suspension (resume cursor).
    next: usize,
}

/// Machine-local evaluation state of one tabled subgoal (an SLG frame).
/// Lives for the whole query — consumer cursors index into `answers`, so
/// frames are never reclaimed before [`Machine::reset`].
struct LocalSubgoal {
    /// Canonical (variant-normalized) subgoal key.
    key: CanonKey,
    /// Shared-space subgoal id (trace correlation across workers).
    shared_id: u64,
    /// The answer list, in derivation order (frozen: machine-independent).
    answers: Vec<TermArena>,
    /// Canonical answer keys already inserted (duplicate elimination).
    dedup: HashSet<Vec<u8>>,
    /// Consumers parked until new answers land or the subgoal completes.
    suspended: Vec<SuspendedConsumer>,
    /// Fixpoint reached: `answers` is the complete answer set.
    complete: bool,
    /// Depth-first number (creation order) and the smallest dfn this
    /// subgoal's subtree links back to — Tarjan-style SCC detection for
    /// leader-based completion.
    dfn: u32,
    minlink: u32,
}

/// A published-choice-point state closure: everything a remote worker needs
/// to continue an alternative (or-parallel state copying).
///
/// The state is a *frozen* `$closure(Goal, Cont...)` tuple in an immutable
/// relocatable [`TermArena`]: freezing happens at most once per published
/// node (on first remote demand — see the or-engine's procrastinated
/// capture), and every claim thaws straight from the arena into the
/// claimant's heap with no intermediate clone.
#[derive(Debug)]
pub struct StateClosure {
    /// Frozen snapshot of the `$closure(Goal, Cont...)` tuple.
    pub arena: TermArena,
    /// Number of continuation goals following the goal in the tuple.
    pub cont_len: usize,
    /// Cells frozen (cost accounting at materialization).
    pub cells: usize,
}

impl StateClosure {
    /// Freeze an already-assembled `$closure(Goal, Cont...)` tuple from
    /// `heap`. `cont_len` is the number of continuation goals after the
    /// goal argument.
    pub fn freeze(heap: &Heap, tuple: Cell, cont_len: usize) -> StateClosure {
        let arena = TermArena::freeze(heap, tuple);
        let cells = arena.len();
        StateClosure {
            arena,
            cont_len,
            cells,
        }
    }
}

/// The solver machine. See the crate docs for the role it plays.
pub struct Machine {
    pub heap: Heap,
    db: Arc<Database>,
    pub(crate) cont: Cont,
    pub(crate) ctrl: Vec<CtrlFrame>,
    pub(crate) status: Status,
    /// Whether `&`/2 raises [`Status::Parcall`] (parallel engines) or is
    /// executed as `,`/2 (pure sequential baseline).
    par_enabled: bool,
    pub stats: Stats,
    pub(crate) costs: Arc<CostModel>,
    /// Captured output of `write/1`, `nl/0`, `writeln/1`.
    pub output: String,
    /// Solutions captured by the internal `$answer/1` goal (or-parallel
    /// engines append it to the query so solutions survive state copying).
    pub answers: Vec<String>,
    /// Steps since the last cancellation check.
    cancel_check_countdown: u32,
    /// SPO: an input marker whose allocation has been procrastinated; it is
    /// materialized just below the first choice point created, or never.
    pending_marker: Option<(u64, u32)>,
    /// Cost already surfaced to a driver clock (see
    /// [`Machine::take_unsurfaced_cost`]).
    surfaced_cost: u64,
    /// Answer-memoization handle. `None` (the default) keeps every memo
    /// consultation point a single branch: no charges, no events — a
    /// memo-off run is bit-identical to a memo-free build.
    memo: Option<Arc<MemoTable>>,
    /// Buffer memo trace events for the engine to drain (tracing only).
    memo_trace: bool,
    /// Tenant charged for this machine's memo insertions (quota
    /// accounting on shared tables; 0 = the single-tenant default).
    memo_tenant: u32,
    memo_events: Vec<EventKind>,
    /// In-flight watches on calls whose answer may be publishable.
    memo_watches: Vec<Option<MemoWatch>>,
    /// Free slots in `memo_watches`.
    memo_free: Vec<usize>,
    /// Generation counter for watch slots (stale-marker detection).
    memo_gen: u64,
    /// Monotone count of parallel conjunctions raised (memo determinacy
    /// validation: a derivation that crossed a parcall is never tabled).
    parcalls_raised: u64,
    /// Shared tabling space for non-determinate tabled predicates. `None`
    /// (the default) keeps every table consultation point a single branch:
    /// a table-off run is bit-identical to a table-free build.
    table: Option<Arc<TableSpace>>,
    /// Buffer table trace events (they ride `memo_events` so engines need
    /// no extra drain plumbing).
    table_trace: bool,
    /// Machine-local SLG frames of tabled subgoals (indexed by cursors).
    table_subgoals: Vec<LocalSubgoal>,
    /// Canonical key bytes → index into `table_subgoals`.
    table_index: HashMap<Vec<u8>, usize>,
    /// In-flight generators, outermost first: (subgoal index, control
    /// index of the generator choice point). Drives dfn/minlink SCC
    /// completion and the or-engine's publication floor.
    table_gen_stack: Vec<(usize, usize)>,
    /// Execute clause heads through the compiled register code cache
    /// (default) or through the tree-walking interpreter oracle
    /// (instantiate + general unify, linear clause scan).
    compiled: bool,
    /// Buffer [`EventKind::ClauseDispatch`]/[`EventKind::ClauseRetry`]
    /// events onto `memo_events` (off unless the trace config asks).
    dispatch_trace: bool,
    /// Reusable register file for compiled head execution (cleared and
    /// resized per clause; kept across calls to avoid reallocation).
    code_slots: Vec<Cell>,
}

impl std::fmt::Debug for Machine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Machine")
            .field("status", &self.status)
            .field("ctrl_len", &self.ctrl.len())
            .field("cont_len", &cont::len(&self.cont))
            .field("heap_len", &self.heap.len())
            .finish()
    }
}

impl Machine {
    pub fn new(db: Arc<Database>, costs: Arc<CostModel>) -> Self {
        Machine {
            heap: Heap::new(),
            db,
            cont: None,
            ctrl: Vec::with_capacity(64),
            status: Status::Failed,
            par_enabled: false,
            stats: Stats::new(),
            costs,
            output: String::new(),
            answers: Vec::new(),
            cancel_check_countdown: 0,
            pending_marker: None,
            surfaced_cost: 0,
            memo: None,
            memo_trace: false,
            memo_tenant: 0,
            memo_events: Vec::new(),
            memo_watches: Vec::new(),
            memo_free: Vec::new(),
            memo_gen: 0,
            parcalls_raised: 0,
            table: None,
            table_trace: false,
            table_subgoals: Vec::new(),
            table_index: HashMap::new(),
            table_gen_stack: Vec::new(),
            compiled: true,
            dispatch_trace: false,
            code_slots: Vec::new(),
        }
    }

    /// Select compiled (default) or interpreted clause execution. The
    /// interpreter is the validation oracle: linear clause scan, arena
    /// block-copy instantiation, general head unification — the exact
    /// pre-compilation execution path.
    pub fn set_clause_exec(&mut self, mode: ClauseExec) {
        self.compiled = matches!(mode, ClauseExec::Compiled);
    }

    pub fn clause_exec(&self) -> ClauseExec {
        if self.compiled {
            ClauseExec::Compiled
        } else {
            ClauseExec::Interpreted
        }
    }

    /// Buffer per-call [`EventKind::ClauseDispatch`] and per-retry
    /// [`EventKind::ClauseRetry`] events (drained with the memo events).
    pub fn set_dispatch_trace(&mut self, on: bool) {
        self.dispatch_trace = on;
    }

    /// Cost charged by this machine since the last call (engines surface
    /// this into their worker's phase cost so *every* machine operation —
    /// including those performed between `run` calls, like marker pushes
    /// or `fail_parcall` — reaches the virtual-time clock exactly once).
    pub fn take_unsurfaced_cost(&mut self) -> u64 {
        let delta = self.stats.cost - self.surfaced_cost;
        self.surfaced_cost = self.stats.cost;
        delta
    }

    /// Enable the parallel-conjunction protocol (used by the engines; the
    /// sequential baseline leaves it off so `&` degrades to `,`).
    pub fn enable_parallel(&mut self, on: bool) {
        self.par_enabled = on;
    }

    pub fn db(&self) -> &Arc<Database> {
        &self.db
    }

    pub fn costs(&self) -> &Arc<CostModel> {
        &self.costs
    }

    pub fn status(&self) -> &Status {
        &self.status
    }

    /// Begin solving `goal` (a term in this machine's heap).
    pub fn set_query(&mut self, goal: Cell) {
        self.cont = cont::push(&None, goal, 0);
        self.status = Status::Running;
    }

    /// Parse `text` as a query, returning its named variables.
    pub fn load_query_text(
        &mut self,
        text: &str,
    ) -> Result<Vec<(String, Cell)>, ace_logic::ReadError> {
        let (goal, vars) = ace_logic::parse_term(&mut self.heap, text)?;
        self.set_query(goal);
        Ok(vars)
    }

    /// Reset for reuse from a machine pool. Harvest [`Machine::stats`]
    /// before calling — they are zeroed here.
    pub fn reset(&mut self) {
        self.heap.clear();
        self.cont = None;
        self.ctrl.clear();
        self.status = Status::Failed;
        self.output.clear();
        self.answers.clear();
        self.pending_marker = None;
        self.stats = Stats::new();
        self.surfaced_cost = 0;
        // The memo handle survives reset — pooled machines keep serving
        // the same table; per-run state does not.
        self.memo_events.clear();
        self.memo_watches.clear();
        self.memo_free.clear();
        self.parcalls_raised = 0;
        // Likewise the table-space handle survives; local SLG state does
        // not (frames are per-query).
        self.table_subgoals.clear();
        self.table_index.clear();
        self.table_gen_stack.clear();
        // The clause-execution mode survives reset (pooled machines keep
        // the engine's configured mode); the register file is scratch.
        self.code_slots.clear();
    }

    // ------------------------------------------------------------------
    // Answer memoization
    // ------------------------------------------------------------------

    /// Attach (or detach) an answer table. `trace` buffers memo events
    /// ([`EventKind::MemoHit`] and friends) for [`Machine::take_memo_events`].
    pub fn set_memo(&mut self, table: Option<Arc<MemoTable>>, trace: bool) {
        self.memo = table;
        self.memo_trace = trace && self.memo.is_some();
    }

    pub fn memo_enabled(&self) -> bool {
        self.memo.is_some()
    }

    /// Charge this machine's memo insertions to `tenant` (see
    /// [`ace_memo::MemoConfig::tenant_quota`]).
    pub fn set_memo_tenant(&mut self, tenant: u32) {
        self.memo_tenant = tenant;
    }

    /// Drain buffered memo trace events (engines forward them to their
    /// worker tracer after every `run`). Allocation-free when empty.
    pub fn take_memo_events(&mut self) -> Vec<EventKind> {
        std::mem::take(&mut self.memo_events)
    }

    /// Canonical memo key of a call term in this machine's heap.
    pub fn memo_key(&self, goal: Cell) -> CanonKey {
        CanonKey::of(&self.heap, goal)
    }

    /// Engine-side publication: freeze `goal` (instantiated) as the single
    /// complete answer of `key` (the key must have been taken *before*
    /// execution bound the call). Returns true if this publication stored.
    pub fn memo_publish_answer(&mut self, key: &CanonKey, goal: Cell) -> bool {
        let Some(table) = self.memo.clone() else {
            return false;
        };
        self.charge(self.costs.memo_store);
        let arena = TermArena::freeze(&self.heap, goal);
        match table.publish_as(self.memo_tenant, key, vec![arena]) {
            PublishOutcome::Stored { epoch, evicted } => {
                self.stats.memo_stores += 1;
                self.stats.memo_evictions += evicted;
                if self.memo_trace {
                    self.memo_events.push(EventKind::MemoStore {
                        key: key.hash,
                        epoch,
                    });
                    self.memo_events.push(EventKind::MemoComplete {
                        key: key.hash,
                        epoch,
                        answers: 1,
                    });
                }
                true
            }
            PublishOutcome::Present { .. } => false,
        }
    }

    /// Consult the answer table for `goal`. `Some(status)` short-circuits
    /// the call (hit: answers replayed); `None` falls through to normal
    /// resolution with a watch planted to capture the answer.
    fn memo_consult(&mut self, goal: Cell) -> Option<Status> {
        let table = self.memo.as_ref()?.clone();
        self.charge(self.costs.memo_lookup);
        let key = CanonKey::of(&self.heap, goal);
        if let Some(entry) = table.lookup(&key) {
            self.stats.memo_hits += 1;
            if self.memo_trace {
                self.memo_events.push(EventKind::MemoHit {
                    key: key.hash,
                    epoch: entry.epoch,
                });
            }
            return Some(self.memo_replay(goal, entry));
        }
        self.stats.memo_misses += 1;
        // Watch this call: a `$memo_store` marker planted before the
        // clause body publishes the answer when the derivation completes
        // without creating nondeterminism.
        let gen = self.memo_gen;
        self.memo_gen += 1;
        let idx = match self.memo_free.pop() {
            Some(i) => i,
            None => {
                self.memo_watches.push(None);
                self.memo_watches.len() - 1
            }
        };
        let marker = self.heap.new_struct(
            memo_store_sym(),
            &[Cell::Int(idx as i64), Cell::Int(gen as i64)],
        );
        self.memo_watches[idx] = Some(MemoWatch {
            key,
            goal,
            gen,
            heap_tide: self.heap.len(),
            ctrl_len: self.ctrl.len(),
            choice_points: self.stats.choice_points,
            parcalls_raised: self.parcalls_raised,
            markers: self.stats.markers_allocated,
            output_len: self.output.len(),
            answers_len: self.answers.len(),
        });
        self.cont = cont::push(&self.cont, marker, self.ctrl.len() as u32);
        None
    }

    /// Replay a complete answer set for `goal` (a memo hit).
    fn memo_replay(&mut self, goal: Cell, entry: Arc<MemoEntry>) -> Status {
        if entry.answers.is_empty() {
            // complete with zero answers: the call is known to fail
            return self.backtrack();
        }
        if entry.answers.len() > 1 {
            self.push_choice(ChoicePoint {
                goal,
                alts: Alts::Memo {
                    entry: entry.clone(),
                    next: 1,
                },
                cont: self.cont.clone(),
                trail: self.heap.trail_mark(),
                heap: self.heap.heap_mark(),
                barrier: self.ctrl.len() as u32,
                shared: None,
            });
        }
        if self.memo_unify_answer(goal, &entry.answers[0]) {
            self.status = Status::Running;
            Status::Running
        } else {
            self.backtrack()
        }
    }

    /// Thaw one stored answer and unify it with the live call. On failure
    /// the partial bindings are undone; returns success.
    fn memo_unify_answer(&mut self, goal: Cell, arena: &TermArena) -> bool {
        let (thawed, cells) = arena.thaw(&mut self.heap);
        self.stats.heap_cells += cells as u64;
        self.charge(cells as u64 * self.costs.heap_cell);
        let pre = self.heap.trail_mark();
        match unify(&mut self.heap, goal, thawed) {
            Some(steps) => {
                self.stats.unify_steps += steps as u64;
                self.charge(steps as u64 * self.costs.unify_step);
                true
            }
            None => {
                let undone = self.heap.undo_to(pre);
                self.stats.trail_undos += undone as u64;
                self.charge(undone as u64 * self.costs.trail_undo);
                false
            }
        }
    }

    /// A `$memo_store(Idx, Gen)` marker was reached: a derivation of the
    /// watched call completed. Publish its answer if the derivation was
    /// provably unique and effect-free; otherwise do nothing (re-running
    /// the goal stays the source of truth).
    fn memo_store_arrival(&mut self, idx: usize, gen: u64) -> Status {
        self.status = Status::Running;
        let Some(slot) = self.memo_watches.get_mut(idx) else {
            return Status::Running;
        };
        if slot.as_ref().is_none_or(|w| w.gen != gen) {
            return Status::Running; // stale marker from a reclaimed slot
        }
        let w = slot.take().expect("checked above");
        self.memo_free.push(idx);
        let unique = self.ctrl.len() == w.ctrl_len
            && self.stats.choice_points == w.choice_points
            && self.parcalls_raised == w.parcalls_raised
            && self.stats.markers_allocated == w.markers
            && self.output.len() == w.output_len
            && self.answers.len() == w.answers_len;
        if unique {
            self.memo_publish_answer(&w.key, w.goal);
        }
        Status::Running
    }

    /// Drop watches whose `$memo_store` marker was destroyed by heap
    /// truncation (backtracking below the watched call).
    fn memo_prune_watches(&mut self) {
        let len = self.heap.len();
        for (i, slot) in self.memo_watches.iter_mut().enumerate() {
            if slot.as_ref().is_some_and(|w| w.heap_tide > len) {
                *slot = None;
                self.memo_free.push(i);
            }
        }
    }

    // ------------------------------------------------------------------
    // Tabling (SLG evaluation of non-determinate tabled predicates)
    // ------------------------------------------------------------------

    /// Attach (or detach) a shared tabling space. `trace` buffers table
    /// events ([`EventKind::TableNew`] and friends) into the memo event
    /// buffer ([`Machine::take_memo_events`] drains both).
    pub fn set_table(&mut self, space: Option<Arc<TableSpace>>, trace: bool) {
        self.table = space;
        self.table_trace = trace && self.table.is_some();
    }

    pub fn table_enabled(&self) -> bool {
        self.table.is_some()
    }

    /// Control index of the outermost tabled-generator choice point, or
    /// `usize::MAX` when no tabled evaluation is in flight. The or-engine
    /// must not publish choice points at or above this floor: frames of
    /// an active SLG evaluation (consumer cursors, `$table_answer`
    /// markers in continuations, the generators themselves) index
    /// machine-local state and are meaningless on another worker.
    pub fn table_publish_floor(&self) -> usize {
        self.table_gen_stack
            .first()
            .map_or(usize::MAX, |&(_, ctrl_idx)| ctrl_idx)
    }

    /// SLG call of a tabled predicate: classify as consumer of a subgoal
    /// this machine is already evaluating, replayer of a completed shared
    /// table, or a fresh generator driving the failure-loop derivation.
    fn table_call(
        &mut self,
        goal: Cell,
        name: Sym,
        arity: u32,
        hdr: Option<ace_logic::Addr>,
    ) -> Status {
        let space = self
            .table
            .as_ref()
            .expect("table_call without a table space")
            .clone();
        self.charge(self.costs.memo_lookup);
        let key = CanonKey::of(&self.heap, goal);

        // Variant of a subgoal already framed on this machine: become a
        // consumer of its (growing or complete) answer list. A link to an
        // incomplete frame means the running generators up to that frame
        // form one SCC — fold the dfn into the innermost generator's
        // minlink so completion is deferred to the common leader.
        if let Some(&idx) = self.table_index.get(&key.bytes) {
            if !self.table_subgoals[idx].complete {
                if let Some(&(top, _)) = self.table_gen_stack.last() {
                    let dfn = self.table_subgoals[idx].dfn;
                    let m = &mut self.table_subgoals[top].minlink;
                    *m = (*m).min(dfn);
                }
            }
            self.push_choice(ChoicePoint {
                goal,
                alts: Alts::TableConsumer {
                    subgoal: idx,
                    next: 0,
                },
                cont: self.cont.clone(),
                trail: self.heap.trail_mark(),
                heap: self.heap.heap_mark(),
                barrier: self.ctrl.len() as u32,
                shared: None,
            });
            // The cursor choice point drains answers (and suspends when
            // dry) through the ordinary backtracking path.
            return self.backtrack();
        }

        match space.register(self.memo_tenant, &key) {
            // Someone already completed this subgoal: a pure lookup.
            RegisterOutcome::Complete(entry) => {
                self.stats.table_hits += 1;
                self.table_replay(goal, entry)
            }
            RegisterOutcome::Fresh { subgoal_id } => {
                self.stats.table_subgoals += 1;
                if self.table_trace {
                    self.memo_events.push(EventKind::TableNew {
                        key: key.hash,
                        subgoal: subgoal_id,
                    });
                }
                self.table_generate(goal, name, arity, hdr, key, subgoal_id)
            }
            // A foreign worker is the registered generator. Stacks are
            // private, so cross-machine suspension is impossible: evaluate
            // the subgoal privately (shadow evaluation). Publication at
            // completion is first-writer-wins, so the race is confluent.
            RegisterOutcome::InProgress { subgoal_id } => {
                self.stats.table_subgoals += 1;
                self.table_generate(goal, name, arity, hdr, key, subgoal_id)
            }
        }
    }

    /// Replay the complete answer set of a shared table entry (the tabled
    /// mirror of [`Machine::memo_replay`]).
    fn table_replay(&mut self, goal: Cell, entry: Arc<TableEntry>) -> Status {
        if entry.answers.is_empty() {
            // complete with zero answers: the call is known to fail
            return self.backtrack();
        }
        if entry.answers.len() > 1 {
            self.push_choice(ChoicePoint {
                goal,
                alts: Alts::TableReplay {
                    entry: entry.clone(),
                    next: 1,
                },
                cont: self.cont.clone(),
                trail: self.heap.trail_mark(),
                heap: self.heap.heap_mark(),
                barrier: self.ctrl.len() as u32,
                shared: None,
            });
        }
        if self.memo_unify_answer(goal, &entry.answers[0]) {
            self.status = Status::Running;
            Status::Running
        } else {
            self.backtrack()
        }
    }

    /// Install a fresh generator for `key`: a caller-consumer cursor below
    /// a generator choice point whose alternatives are the predicate's
    /// clauses, each run with a continuation of exactly
    /// `$table_answer(Frame, Goal)` — derivations insert answers and fail
    /// back into the clause loop, never into the caller. The caller drains
    /// the answer list through the cursor once the generator's SCC
    /// completes (local scheduling).
    fn table_generate(
        &mut self,
        goal: Cell,
        name: Sym,
        arity: u32,
        hdr: Option<ace_logic::Addr>,
        key: CanonKey,
        shared_id: u64,
    ) -> Status {
        let db = self.db.clone();
        let Some(pred) = db.predicate(name, arity) else {
            return self.error(format!("undefined predicate {}/{arity}", name.name()));
        };
        let ikey = match hdr {
            Some(h) if arity > 0 => IndexKey::of(&self.heap, self.heap.str_arg(h, 0)),
            _ => IndexKey::Any,
        };
        let idx = self.table_subgoals.len();
        self.table_index.insert(key.bytes.clone(), idx);
        self.table_subgoals.push(LocalSubgoal {
            key,
            shared_id,
            answers: Vec::new(),
            dedup: HashSet::new(),
            suspended: Vec::new(),
            complete: false,
            dfn: idx as u32,
            minlink: idx as u32,
        });

        let Some(first) = self.pred_next(pred, ikey, 0) else {
            // No clause can match: the subgoal completes empty here.
            self.table_complete_frame(idx);
            return self.backtrack();
        };

        // The caller's cursor sits below the generator so it survives the
        // generator's exhaustion and drains the completed answer list.
        self.push_choice(ChoicePoint {
            goal,
            alts: Alts::TableConsumer {
                subgoal: idx,
                next: 0,
            },
            cont: self.cont.clone(),
            trail: self.heap.trail_mark(),
            heap: self.heap.heap_mark(),
            barrier: self.ctrl.len() as u32,
            shared: None,
        });

        let marker = self
            .heap
            .new_struct(table_answer_sym(), &[Cell::Int(idx as i64), goal]);
        let gen_ctrl = self.ctrl.len();
        let gen_cont = cont::push(&None, marker, gen_ctrl as u32);
        self.push_choice(ChoicePoint {
            goal,
            alts: Alts::TableGen {
                subgoal: idx,
                name,
                arity,
                key: ikey,
                next: first + 1,
            },
            cont: gen_cont.clone(),
            trail: self.heap.trail_mark(),
            heap: self.heap.heap_mark(),
            barrier: gen_ctrl as u32,
            shared: None,
        });
        self.table_gen_stack.push((idx, gen_ctrl));
        self.cont = gen_cont;
        // Cut inside a tabled clause is local to that clause: it must
        // never discard the generator choice point.
        let body_barrier = self.ctrl.len() as u32;
        if self.try_clause(name, arity, first, goal, body_barrier) {
            Status::Running
        } else {
            self.backtrack()
        }
    }

    /// A derivation of a tabled subgoal reached its `$table_answer`
    /// marker: insert the (now instantiated) answer if new, then fail
    /// back into the clause loop — the failure-driven core of SLG answer
    /// generation.
    fn table_answer_arrival(&mut self, idx: usize, goal: Cell) -> Status {
        self.charge(self.costs.memo_store);
        let key = CanonKey::of(&self.heap, goal);
        if self.table_subgoals[idx].dedup.insert(key.bytes) {
            let arena = TermArena::freeze(&self.heap, goal);
            self.table_subgoals[idx].answers.push(arena);
            self.stats.table_answers += 1;
            if self.table_trace {
                let f = &self.table_subgoals[idx];
                self.memo_events.push(EventKind::TableAnswer {
                    key: f.key.hash,
                    subgoal: f.shared_id,
                    answers: f.answers.len(),
                });
            }
        } else {
            self.stats.table_dups += 1;
        }
        self.backtrack()
    }

    /// Freeze a dry consumer's goal + continuation and park it on the
    /// subgoal frame. Called from the backtracking loop with machine state
    /// already restored to the cursor's choice point (so the frozen terms
    /// are in their call-time state); the cursor CP itself must still be
    /// on top of the control stack and is popped here.
    fn table_suspend(&mut self, subgoal: usize, next: usize, goal: Cell) {
        self.ctrl.pop();
        let cont_goals = cont::to_vec(&self.cont);
        // Freeze goal + continuation jointly (one tuple) so shared
        // variables stay shared; the scratch tuple is reclaimed at once.
        let mark = self.heap.heap_mark();
        let mut tuple_args = Vec::with_capacity(cont_goals.len() + 1);
        tuple_args.push(goal);
        tuple_args.extend(cont_goals.iter().map(|(g, _)| *g));
        let tuple = self.heap.new_struct(sym("$closure"), &tuple_args);
        let closure = StateClosure::freeze(&self.heap, tuple, cont_goals.len());
        self.heap.truncate_to(mark);
        self.charge(closure.cells as u64 * self.costs.heap_cell);
        self.stats.table_suspends += 1;
        if self.table_trace {
            let f = &self.table_subgoals[subgoal];
            self.memo_events.push(EventKind::TableSuspend {
                key: f.key.hash,
                subgoal: f.shared_id,
                seen: next,
            });
        }
        self.table_subgoals[subgoal]
            .suspended
            .push(SuspendedConsumer { closure, next });
    }

    /// The generator's clause pool ran dry: the SLG completion check.
    /// Leader (minlink == dfn): resume any suspended consumer in the SCC
    /// that still has unconsumed answers; when none remain the SCC is at
    /// its fixpoint — complete every member, publish the answer sets, and
    /// dissolve the generators so backtracking reaches the caller-consumer
    /// cursors below. Non-leader: fold the minlink outward and dissolve.
    ///
    /// Always followed by another turn of the backtracking loop: a resume
    /// pushes a fresh cursor CP for the loop to drain (no recursion, so
    /// deep fixpoint chains cannot overflow the host stack); the other
    /// outcomes pop the generator CP. `top` is its control index.
    fn table_gen_exhausted(&mut self, subgoal: usize, top: usize) {
        debug_assert_eq!(
            self.table_gen_stack.last().map(|&(s, _)| s),
            Some(subgoal),
            "generator exhaustion out of stack order"
        );
        let dfn = self.table_subgoals[subgoal].dfn;
        let minlink = self.table_subgoals[subgoal].minlink;
        if minlink < dfn {
            // Non-leader: this subgoal's fate is its leader's.
            self.table_gen_stack.pop();
            if let Some(&(outer, _)) = self.table_gen_stack.last() {
                let m = &mut self.table_subgoals[outer].minlink;
                *m = (*m).min(minlink);
            }
            self.ctrl.pop(); // the generator choice point
            return;
        }
        // Leader: fixpoint loop. Incomplete frames with dfn >= the
        // leader's are exactly the SCC members (generators stack, and
        // independent sub-evaluations completed themselves already).
        let mut pick = None;
        'scan: for (i, f) in self.table_subgoals.iter().enumerate() {
            if f.complete || f.dfn < dfn {
                continue;
            }
            for (j, s) in f.suspended.iter().enumerate() {
                if s.next < f.answers.len() {
                    pick = Some((i, j));
                    break 'scan;
                }
            }
        }
        if let Some((i, j)) = pick {
            let susp = self.table_subgoals[i].suspended.swap_remove(j);
            self.table_resume(i, susp, top);
            return;
        }
        // Fixpoint: every member's answer list is saturated. Suspended
        // consumers are provably drained (the scan found none pending).
        for i in 0..self.table_subgoals.len() {
            if self.table_subgoals[i].complete || self.table_subgoals[i].dfn < dfn {
                continue;
            }
            self.table_complete_frame(i);
        }
        while self
            .table_gen_stack
            .last()
            .is_some_and(|&(s, _)| self.table_subgoals[s].dfn >= dfn)
        {
            self.table_gen_stack.pop();
        }
        self.ctrl.pop(); // the leader's generator choice point
    }

    /// Mark frame `idx` complete, publish its answer set to the shared
    /// space (first-writer-wins across racing shadow evaluations), and
    /// drop its (drained) suspensions.
    fn table_complete_frame(&mut self, idx: usize) {
        self.table_subgoals[idx].complete = true;
        self.table_subgoals[idx].suspended.clear();
        self.stats.table_completes += 1;
        if self.table_trace {
            let f = &self.table_subgoals[idx];
            self.memo_events.push(EventKind::TableComplete {
                key: f.key.hash,
                subgoal: f.shared_id,
                answers: f.answers.len(),
            });
        }
        if let Some(space) = self.table.clone() {
            self.charge(self.costs.memo_store);
            let key = self.table_subgoals[idx].key.clone();
            let answers = self.table_subgoals[idx].answers.clone();
            let _ = space.publish_as(self.memo_tenant, &key, answers);
        }
    }

    /// Thaw a suspended consumer and park its fresh cursor CP just above
    /// the leader's generator choice point (at control index `top`); the
    /// enclosing backtracking loop drains it on its next turn.
    fn table_resume(&mut self, subgoal: usize, susp: SuspendedConsumer, top: usize) {
        self.stats.table_resumes += 1;
        if self.table_trace {
            let f = &self.table_subgoals[subgoal];
            self.memo_events.push(EventKind::TableResume {
                key: f.key.hash,
                subgoal: f.shared_id,
                seen: susp.next,
            });
        }
        let (root, cells) = susp.closure.arena.thaw(&mut self.heap);
        self.stats.heap_cells += cells as u64;
        self.charge(self.costs.closure_thaw);
        let Cell::Str(hdr) = root else {
            unreachable!("suspension arena root is the $closure tuple")
        };
        let goal = self.heap.str_arg(hdr, 0);
        // Barriers clamp to the resumption floor: a cut in the resumed
        // continuation may discard the cursor but never the generator.
        let floor = (top + 1) as u32;
        let cont_goals: Vec<(Cell, u32)> = (0..susp.closure.cont_len)
            .map(|i| (self.heap.str_arg(hdr, 1 + i as u32), 0))
            .collect();
        let cont = cont::from_vec(&cont_goals, |_| floor);
        self.push_choice(ChoicePoint {
            goal,
            alts: Alts::TableConsumer {
                subgoal,
                next: susp.next,
            },
            cont,
            trail: self.heap.trail_mark(),
            heap: self.heap.heap_mark(),
            barrier: floor,
            shared: None,
        });
    }

    /// Choice frames are being discarded outside the backtracking loop
    /// (cut, parcall failure, rollback): keep the generator stack in sync.
    /// A generator discarded this way leaves its subgoal incomplete —
    /// later variant calls degrade to draining whatever answers exist
    /// (sound: tabling never invents answers), mirroring how cuts over
    /// tabled calls are restricted in real SLG systems.
    fn table_note_discarded(&mut self, alts: &Alts) {
        if self.table_gen_stack.is_empty() {
            return;
        }
        if let Alts::TableGen { subgoal, .. } = alts {
            self.table_gen_stack.retain(|&(s, _)| s != *subgoal);
        }
    }

    // ------------------------------------------------------------------
    // Cost & stats helpers (crate-visible for builtins)
    // ------------------------------------------------------------------

    #[inline]
    pub(crate) fn charge(&mut self, units: u64) {
        self.stats.charge(units);
    }

    // ------------------------------------------------------------------
    // Control-stack access for the parallel engines
    // ------------------------------------------------------------------

    pub fn ctrl_len(&self) -> usize {
        self.ctrl.len()
    }

    /// Read-only view of the control stack (engines use it for refined
    /// determinacy analysis and publication scans).
    pub fn ctrl_frames(&self) -> &[CtrlFrame] {
        &self.ctrl
    }

    /// "Did any choice point (or nested parcall frame) survive above
    /// `height`?" — the runtime determinacy test driving SPO and LPCO.
    pub fn is_deterministic_above(&self, height: usize) -> bool {
        self.ctrl[height.min(self.ctrl.len())..]
            .iter()
            .all(|f| f.is_marker())
    }

    /// The parcall frame on top of the control stack (present when status
    /// is [`Status::Parcall`] or [`Status::ParcallRedo`]).
    pub fn top_parcall_mut(&mut self) -> Option<&mut ParcallFrame> {
        match self.ctrl.last_mut() {
            Some(CtrlFrame::Parcall(pf)) => Some(pf),
            _ => None,
        }
    }

    pub fn top_parcall(&self) -> Option<&ParcallFrame> {
        match self.ctrl.last() {
            Some(CtrlFrame::Parcall(pf)) => Some(pf),
            _ => None,
        }
    }

    /// Resume execution after the and-engine integrated a (new) solution of
    /// the top parcall frame: continue with the goals after the `&`.
    pub fn resume_after_parcall(&mut self) {
        let cont = self
            .top_parcall()
            .expect("resume_after_parcall: no parcall on top")
            .cont
            .clone();
        self.cont = cont;
        self.status = Status::Running;
    }

    /// Resume with an explicit continuation (integration of a parcall frame
    /// that is no longer on top — inline-execution chains stack several
    /// frames on one control stack).
    pub fn resume_with_cont(&mut self, cont: Cont) {
        self.cont = cont;
        self.status = Status::Running;
    }

    /// Inline execution (&ACE-style): run `goal` — the last branch of the
    /// just-raised parallel call — directly on this machine, on top of the
    /// parcall frame. The locally executed subgoal needs no input marker
    /// ("the parcall frame marks its beginning", paper Figure 2); the
    /// `$inline_barrier` goal planted after it plays the end marker's
    /// role: every (re)arrival there hands control back to the and-engine
    /// for (re)integration of the sibling slots.
    pub fn run_inline_branch(&mut self, goal: Cell, frame_id: u64) {
        let barrier = self.ctrl.len() as u32;
        let marker = self
            .heap
            .new_struct(inline_barrier_sym(), &[Cell::Int(frame_id as i64)]);
        let cont = cont::push(&None, marker, barrier);
        self.cont = cont::push(&cont, goal, barrier);
        self.status = Status::Running;
    }

    /// Fail the parallel call whose machine-level frame has `frame_id`,
    /// discarding everything above it on the control stack (deeper inline
    /// frames, markers, choice points — all part of the doomed branch),
    /// then continue backtracking below it.
    pub fn fail_parcall_until(&mut self, frame_id: u64) -> Status {
        loop {
            match self.ctrl.pop() {
                None => panic!("fail_parcall_until: frame {frame_id} not on ctrl"),
                Some(CtrlFrame::Choice(cp)) => {
                    self.table_note_discarded(&cp.alts);
                    if let Some(shared) = cp.shared {
                        shared.owner_detached();
                    }
                    self.charge(self.costs.frame_traverse);
                }
                Some(CtrlFrame::Marker(_)) => {
                    self.charge(self.costs.frame_traverse);
                }
                Some(CtrlFrame::Parcall(pf)) => {
                    self.charge(self.costs.frame_traverse);
                    self.stats.frame_traversals += 1;
                    if pf.id == frame_id {
                        let undone = self.heap.undo_to(pf.trail);
                        self.heap.truncate_to(pf.heap);
                        self.stats.trail_undos += undone as u64;
                        self.charge(undone as u64 * self.costs.trail_undo);
                        return self.backtrack();
                    }
                }
            }
        }
    }

    /// Is the top parcall frame's continuation empty except for the
    /// `$inline_barrier` end marker of frame `frame_id`? That is the
    /// inline-chain form of LPCO's "the parallel call is the last goal of
    /// the clause" condition (the real continuation is parked in the
    /// enclosing frame).
    pub fn top_parcall_cont_is_barrier_of(&self, frame_id: u64) -> bool {
        let Some(pf) = self.top_parcall() else {
            return false;
        };
        let Some(node) = &pf.cont else { return false };
        if node.next.is_some() {
            return false;
        }
        match crate::machine::view_barrier(&self.heap, node.goal) {
            Some(fid) => fid == frame_id,
            None => false,
        }
    }

    /// LPCO in inline chains: is the control stack between the top parcall
    /// frame and the *previous* parcall frame free of choice points (the
    /// inline branch has been determinate since its frame)?
    pub fn deterministic_since_previous_parcall(&self) -> bool {
        if self.ctrl.is_empty() {
            return true;
        }
        for f in self.ctrl[..self.ctrl.len() - 1].iter().rev() {
            match f {
                CtrlFrame::Marker(_) => continue,
                CtrlFrame::Choice(_) => return false,
                CtrlFrame::Parcall(_) => return true,
            }
        }
        true
    }

    /// The top parcall frame is exhausted (inside failure on first
    /// execution, or cross-product enumeration done): pop it, restore state
    /// to before the parallel call, and continue backtracking.
    pub fn fail_parcall(&mut self) -> Status {
        let Some(CtrlFrame::Parcall(pf)) = self.ctrl.pop() else {
            panic!("fail_parcall: no parcall on top");
        };
        let undone = self.heap.undo_to(pf.trail);
        self.heap.truncate_to(pf.heap);
        self.stats.trail_undos += undone as u64;
        self.charge(undone as u64 * self.costs.trail_undo + self.costs.frame_traverse);
        self.backtrack()
    }

    /// LPCO support: pop the just-raised top parcall frame and resume the
    /// machine *past* it (its branches will be re-parented into an ancestor
    /// frame by the and-engine). The machine behaves as if the clause body
    /// ended before the parallel call.
    pub fn merge_out_parcall(&mut self) -> ParcallFrame {
        let cont = self
            .top_parcall()
            .expect("merge_out_parcall: no parcall on top")
            .cont
            .clone();
        let Some(CtrlFrame::Parcall(pf)) = self.ctrl.pop() else {
            unreachable!()
        };
        self.cont = cont;
        self.status = Status::Running;
        pf
    }

    /// Push an input or end marker delimiting a subgoal stack section
    /// (allocated by the and-engine when a worker picks up a parcall
    /// subgoal; elided under SPO/PDO).
    pub fn push_marker(&mut self, kind: MarkerKind, parcall_id: u64, slot: u32) {
        self.stats.markers_allocated += 1;
        self.charge(self.costs.marker_alloc);
        let m = Marker {
            kind,
            parcall_id,
            slot,
            trail: self.heap.trail_mark(),
            heap: self.heap.heap_mark(),
        };
        self.ctrl.push(CtrlFrame::Marker(m));
    }

    /// PDO support: continue this machine (currently at a [`Status::Solution`])
    /// with another goal, as one contiguous computation — no markers, no
    /// new machine; `(a & b)` executed here becomes `(a, b)`.
    pub fn continue_with(&mut self, goal: Cell) {
        debug_assert_eq!(self.status, Status::Solution);
        self.cont = cont::push(&None, goal, 0);
        self.status = Status::Running;
    }

    /// SPO: procrastinate this subgoal's input-marker allocation. The
    /// marker is materialized below the first choice point created, or —
    /// if the subgoal completes deterministically — never.
    pub fn procrastinate_input_marker(&mut self, parcall_id: u64, slot: u32) {
        self.pending_marker = Some((parcall_id, slot));
    }

    /// Is the procrastinated input marker still unmaterialized?
    pub fn input_marker_still_pending(&self) -> bool {
        self.pending_marker.is_some()
    }

    /// Clear any procrastinated marker (slot finished deterministically).
    pub fn clear_pending_marker(&mut self) {
        self.pending_marker = None;
    }

    /// Does the control stack contain any parcall frame? Used to classify
    /// a finished subgoal: such a machine cannot be kept as a plain
    /// sequential generator (its redos would need the full frame protocol),
    /// so further solutions are obtained by recomputation instead.
    pub fn has_parcall_frames(&self) -> bool {
        self.ctrl.iter().any(|f| f.is_parcall())
    }

    /// LPCO condition (i)+(ii): no choice point survives below the top
    /// parcall frame — the computation up to the trailing parallel call was
    /// determinate.
    pub fn deterministic_before_top_parcall(&self) -> bool {
        if self.ctrl.is_empty() {
            return true;
        }
        self.ctrl[..self.ctrl.len() - 1]
            .iter()
            .all(|f| f.is_marker())
    }

    /// Plant a PDO fence at the current control height; returns its index
    /// so a successful owner execution can disarm it.
    pub fn push_fence(&mut self, parcall_id: u64, slot: u32) -> usize {
        let idx = self.ctrl.len();
        self.ctrl.push(CtrlFrame::Marker(Marker {
            kind: MarkerKind::Fence,
            parcall_id,
            slot,
            trail: self.heap.trail_mark(),
            heap: self.heap.heap_mark(),
        }));
        idx
    }

    /// Disarm the fence at `idx` (owner execution committed): it becomes a
    /// transparent end marker, so later backtracking flows through.
    pub fn disarm_fence(&mut self, idx: usize) {
        if let Some(CtrlFrame::Marker(m)) = self.ctrl.get_mut(idx) {
            debug_assert_eq!(m.kind, MarkerKind::Fence);
            m.kind = MarkerKind::End;
        }
    }

    /// Roll a speculative owner execution back: drop every control frame at
    /// `ctrl_len` and above, undo the trail and truncate the heap to the
    /// given marks.
    pub fn rollback_to(
        &mut self,
        ctrl_len: usize,
        trail: TrailMark,
        heap: ace_logic::heap::HeapMark,
    ) {
        while self.ctrl.len() > ctrl_len {
            if let Some(CtrlFrame::Choice(cp)) = self.ctrl.pop() {
                self.table_note_discarded(&cp.alts);
                if let Some(shared) = cp.shared {
                    shared.owner_detached();
                }
            }
        }
        let undone = self.heap.undo_to(trail);
        self.stats.trail_undos += undone as u64;
        self.charge(undone as u64 * self.costs.trail_undo);
        self.heap.truncate_to(heap);
    }

    /// Indices of private (unpublished) choice points, oldest first
    /// (or-engine publication scan).
    pub fn private_choice_indices(&self) -> Vec<usize> {
        self.ctrl
            .iter()
            .enumerate()
            .filter_map(|(i, f)| match f {
                CtrlFrame::Choice(cp) if cp.shared.is_none() => Some(i),
                _ => None,
            })
            .collect()
    }

    /// Inspect a choice point (or-engine publication).
    pub fn choice_at(&self, idx: usize) -> Option<&ChoicePoint> {
        match self.ctrl.get(idx) {
            Some(CtrlFrame::Choice(cp)) => Some(cp),
            _ => None,
        }
    }

    /// Install a shared-alternatives pool on the choice point at `idx`.
    /// From now on the owner claims alternatives from the pool too.
    pub fn share_choice(&mut self, idx: usize, shared: Arc<dyn SharedChoice>) {
        match self.ctrl.get_mut(idx) {
            Some(CtrlFrame::Choice(cp)) => cp.shared = Some(shared),
            other => panic!("share_choice: not a choice point: {other:?}"),
        }
    }

    /// Find the control index of the shared choice point published under
    /// `node_id` at `epoch`, if it is still on this machine's stack
    /// (deferred-closure materialization: the or-engine records the node,
    /// not the index, because the stack may shift between publish and
    /// first remote demand).
    pub fn shared_choice_index(&self, node_id: u64, epoch: u64) -> Option<usize> {
        self.ctrl.iter().enumerate().find_map(|(i, f)| match f {
            CtrlFrame::Choice(cp) => match &cp.shared {
                Some(sh) if sh.node_id() == node_id && sh.epoch() == epoch => Some(i),
                _ => None,
            },
            _ => None,
        })
    }

    /// Freeze the state of the choice point at `idx` so a remote worker
    /// can run one of its alternatives: temporarily unwind the trail to the
    /// choice point, freeze the goal and continuation into an immutable
    /// arena, rewind.
    pub fn choice_closure(&mut self, idx: usize) -> StateClosure {
        let (goal, mut cont_goals, trail) = {
            let Some(CtrlFrame::Choice(cp)) = self.ctrl.get(idx) else {
                panic!("choice_closure: not a choice point");
            };
            (cp.goal, cont::to_vec(&cp.cont), cp.trail)
        };
        // `$memo_store` markers are machine-local bookkeeping (they index
        // this machine's watch table); to a remote worker they mean
        // `true`, so they are dropped from the shipped continuation.
        cont_goals.retain(|&(g, _)| {
            !matches!(view(&self.heap, g),
                      TermView::Struct(f, 2, _) if f == memo_store_sym())
        });
        let section = self.heap.unwind_section(trail);
        // Freeze goal + every continuation goal jointly (one tuple) so
        // shared variables stay shared in the closure.
        let mut tuple_args = Vec::with_capacity(cont_goals.len() + 1);
        tuple_args.push(goal);
        tuple_args.extend(cont_goals.iter().map(|(g, _)| *g));
        let tuple = self.heap.new_struct(sym("$closure"), &tuple_args);
        let closure = StateClosure::freeze(&self.heap, tuple, cont_goals.len());
        self.heap.rewind_section(section);

        self.stats.cells_copied_publish += closure.cells as u64;
        closure
    }

    /// Install a published alternative on this (fresh) machine: thaw the
    /// frozen closure tuple straight into this heap (one block splice —
    /// no clone, no structural re-copy; variable sharing is preserved by
    /// the arena), rebuild the continuation (barriers clamp to this
    /// machine's floor), and start executing `clause_idx` of the goal's
    /// predicate. Returns `false` when the head unification already fails.
    pub fn install_closure(
        &mut self,
        closure: &StateClosure,
        name: Sym,
        arity: u32,
        clause_idx: usize,
    ) -> bool {
        debug_assert!(self.ctrl.is_empty() && self.cont.is_none());
        let (root, cells) = closure.arena.thaw(&mut self.heap);
        self.stats.cells_copied_claim += cells as u64;
        // Flat price: the thaw is a block copy plus relocation, not a
        // per-cell structural walk (see `CostModel::closure_thaw`).
        self.charge(self.costs.closure_thaw);

        let Cell::Str(hdr) = root else {
            unreachable!("closure arena root is the $closure tuple")
        };
        let goal = self.heap.str_arg(hdr, 0);
        let cont_goals: Vec<(Cell, u32)> = (0..closure.cont_len)
            .map(|i| (self.heap.str_arg(hdr, 1 + i as u32), 0u32))
            .collect();
        self.cont = cont::from_vec(&cont_goals, |_| 0);
        self.status = Status::Running;

        let ok = self.try_clause(name, arity, clause_idx, goal, 0);
        if !ok {
            self.status = Status::Failed;
        }
        ok
    }

    // ------------------------------------------------------------------
    // Execution
    // ------------------------------------------------------------------

    /// Run until a non-`Running` status, the quantum is exhausted, or
    /// cancellation. Returns the current status ([`Status::Running`] means
    /// "quantum expired, call again").
    pub fn run(&mut self, quantum: u64, cancel: Option<&CancelToken>) -> Status {
        let start = self.stats.cost;
        loop {
            if let Some(tok) = cancel {
                if self.cancel_check_countdown == 0 {
                    self.cancel_check_countdown = 32;
                    if tok.is_cancelled() {
                        self.status = Status::Cancelled;
                        return Status::Cancelled;
                    }
                }
                self.cancel_check_countdown -= 1;
            }
            let s = self.step();
            if s != Status::Running {
                return s;
            }
            if self.stats.cost - start >= quantum {
                return Status::Running;
            }
        }
    }

    /// Run to the next definitive outcome with no quantum (sequential use).
    pub fn run_to_completion(&mut self) -> Status {
        loop {
            let s = self.step();
            if s != Status::Running {
                return s;
            }
        }
    }

    /// Perform one resolution step.
    pub fn step(&mut self) -> Status {
        if self.status != Status::Running {
            return self.status.clone();
        }
        let Some(node) = self.cont.take() else {
            self.status = Status::Solution;
            self.stats.solutions += 1;
            return Status::Solution;
        };
        self.cont = node.next.clone();
        let goal = node.goal;
        let barrier = node.barrier;
        self.dispatch(goal, barrier)
    }

    fn dispatch(&mut self, goal: Cell, barrier: u32) -> Status {
        self.charge(self.costs.call_dispatch);
        let w = wk();
        match view(&self.heap, goal) {
            TermView::Var(_) => self.error("unbound goal (instantiation error)"),
            TermView::Int(_) | TermView::Nil | TermView::List(_) => {
                self.error("type error: callable expected")
            }
            TermView::Atom(s) => {
                if s == w.true_ {
                    self.status = Status::Running;
                    Status::Running
                } else if s == w.fail || s == w.false_ {
                    self.backtrack()
                } else if s == w.cut {
                    self.cut_to(barrier);
                    Status::Running
                } else if s == w.nl {
                    self.output.push('\n');
                    Status::Running
                } else if s == w.halt {
                    self.status = Status::Halted;
                    Status::Halted
                } else {
                    self.call_user(goal, s, 0, None)
                }
            }
            TermView::Struct(f, n, hdr) => {
                if f == w.comma && n == 2 {
                    let a = self.heap.str_arg(hdr, 0);
                    let b = self.heap.str_arg(hdr, 1);
                    self.cont = cont::push(&self.cont, b, barrier);
                    self.cont = cont::push(&self.cont, a, barrier);
                    Status::Running
                } else if f == w.amp && n == 2 {
                    // Inside a tabled generator `&` degrades to `,`: the
                    // derivation's continuation carries machine-local
                    // `$table_answer` markers that must not be handed to
                    // the and-engine's slot protocol (sound — parallel
                    // conjunction and sequential conjunction agree on
                    // answer sets).
                    if self.par_enabled && self.table_gen_stack.is_empty() {
                        self.raise_parcall(goal, barrier)
                    } else {
                        // sequential fallback: `&` behaves as `,`
                        let a = self.heap.str_arg(hdr, 0);
                        let b = self.heap.str_arg(hdr, 1);
                        self.cont = cont::push(&self.cont, b, barrier);
                        self.cont = cont::push(&self.cont, a, barrier);
                        Status::Running
                    }
                } else if f == w.semicolon && n == 2 {
                    self.disjunction(hdr, barrier)
                } else if f == w.arrow && n == 2 {
                    // bare C -> T  ==  (C -> T ; fail)
                    let c = self.heap.str_arg(hdr, 0);
                    let t = self.heap.str_arg(hdr, 1);
                    self.if_then_else(c, t, Cell::Atom(w.fail), barrier)
                } else if (f == w.naf || f == w.not) && n == 1 {
                    let g = self.heap.str_arg(hdr, 0);
                    self.if_then_else(g, Cell::Atom(w.fail), Cell::Atom(w.true_), barrier)
                } else if f == w.call && n >= 1 {
                    self.call_n(hdr, n)
                } else if f == inline_barrier_sym() && n == 1 {
                    let Cell::Int(fid) = self.heap.deref(self.heap.str_arg(hdr, 0)) else {
                        unreachable!("malformed inline barrier")
                    };
                    self.status = Status::InlineBarrier(fid as u64);
                    self.status.clone()
                } else if f == body_step_sym() && n == 3 {
                    self.compiled_body_step(hdr, barrier)
                } else if f == memo_store_sym() && n == 2 {
                    let Cell::Int(idx) = self.heap.deref(self.heap.str_arg(hdr, 0)) else {
                        unreachable!("malformed memo-store marker")
                    };
                    let Cell::Int(gen) = self.heap.deref(self.heap.str_arg(hdr, 1)) else {
                        unreachable!("malformed memo-store marker")
                    };
                    self.memo_store_arrival(idx as usize, gen as u64)
                } else if f == table_answer_sym() && n == 2 {
                    let Cell::Int(idx) = self.heap.deref(self.heap.str_arg(hdr, 0)) else {
                        unreachable!("malformed table-answer marker")
                    };
                    let g = self.heap.str_arg(hdr, 1);
                    self.table_answer_arrival(idx as usize, g)
                } else if f == ite_then_sym() && n == 2 {
                    // internal: ITE condition succeeded — cut the else
                    // choice point, then run Then.
                    let t = self.heap.str_arg(hdr, 0);
                    let Cell::Int(cp_idx) = self.heap.deref(self.heap.str_arg(hdr, 1)) else {
                        unreachable!()
                    };
                    self.cut_to(cp_idx as u32);
                    self.cont = cont::push(&self.cont, t, barrier);
                    Status::Running
                } else if let Some(status) = crate::builtins::dispatch(self, f, n, hdr) {
                    status
                } else {
                    self.call_user(goal, f, n, Some(hdr))
                }
            }
        }
    }

    fn raise_parcall(&mut self, goal: Cell, barrier: u32) -> Status {
        // Flatten `a & b & c` (xfy: a & (b & c)) into branch list.
        let mut branches = Vec::new();
        let mut cur = goal;
        loop {
            match view(&self.heap, cur) {
                TermView::Struct(f, 2, hdr) if f == wk().amp => {
                    branches.push(self.heap.str_arg(hdr, 0));
                    cur = self.heap.str_arg(hdr, 1);
                }
                _ => {
                    branches.push(cur);
                    break;
                }
            }
        }
        // Frame-allocation cost and count are charged by the and-engine,
        // which decides whether this frame is kept or merged away (LPCO).
        self.parcalls_raised += 1;
        let pf = ParcallFrame {
            id: PARCALL_IDS.fetch_add(1, Ordering::Relaxed),
            branches,
            cont: self.cont.clone(),
            trail: self.heap.trail_mark(),
            heap: self.heap.heap_mark(),
            barrier,
            ext: None,
        };
        self.ctrl.push(CtrlFrame::Parcall(pf));
        self.status = Status::Parcall;
        Status::Parcall
    }

    fn disjunction(&mut self, hdr: ace_logic::Addr, barrier: u32) -> Status {
        let lhs = self.heap.str_arg(hdr, 0);
        let rhs = self.heap.str_arg(hdr, 1);
        // if-then-else?
        if let TermView::Struct(f, 2, ite_hdr) = view(&self.heap, lhs) {
            if f == wk().arrow {
                let c = self.heap.str_arg(ite_hdr, 0);
                let t = self.heap.str_arg(ite_hdr, 1);
                return self.if_then_else(c, t, rhs, barrier);
            }
        }
        self.push_choice(ChoicePoint {
            goal: lhs,
            alts: Alts::Disj { rhs },
            cont: self.cont.clone(),
            trail: self.heap.trail_mark(),
            heap: self.heap.heap_mark(),
            barrier,
            shared: None,
        });
        self.cont = cont::push(&self.cont, lhs, barrier);
        Status::Running
    }

    fn if_then_else(&mut self, c: Cell, t: Cell, e: Cell, barrier: u32) -> Status {
        let cp_idx = self.ctrl.len() as i64;
        self.push_choice(ChoicePoint {
            goal: c,
            alts: Alts::Disj { rhs: e },
            cont: self.cont.clone(),
            trail: self.heap.trail_mark(),
            heap: self.heap.heap_mark(),
            barrier,
            shared: None,
        });
        // run C, then '$ite_then'(T, cp_idx); C's own cuts are local to it.
        let then_goal = self
            .heap
            .new_struct(sym("$ite_then"), &[t, Cell::Int(cp_idx)]);
        self.cont = cont::push(&self.cont, then_goal, barrier);
        let cond_barrier = self.ctrl.len() as u32; // cut inside C is local
        self.cont = cont::push(&self.cont, c, cond_barrier);
        Status::Running
    }

    fn call_n(&mut self, hdr: ace_logic::Addr, n: u32) -> Status {
        self.charge(self.costs.builtin);
        let target = self.heap.str_arg(hdr, 0);
        let goal = if n == 1 {
            target
        } else {
            // call(F, A1..Ak): append args to F
            match view(&self.heap, target) {
                TermView::Atom(f) => {
                    let extra: Vec<Cell> = (1..n).map(|i| self.heap.str_arg(hdr, i)).collect();
                    self.heap.new_struct(f, &extra)
                }
                TermView::Struct(f, m, ghdr) => {
                    let mut args: Vec<Cell> = (0..m).map(|i| self.heap.str_arg(ghdr, i)).collect();
                    args.extend((1..n).map(|i| self.heap.str_arg(hdr, i)));
                    self.heap.new_struct(f, &args)
                }
                _ => return self.error("call/N: callable expected"),
            }
        };
        // cut inside call/N is local: fresh barrier at current height
        let barrier = self.ctrl.len() as u32;
        self.cont = cont::push(&self.cont, goal, barrier);
        Status::Running
    }

    fn call_user(
        &mut self,
        goal: Cell,
        name: Sym,
        arity: u32,
        hdr: Option<ace_logic::Addr>,
    ) -> Status {
        self.stats.calls += 1;
        self.charge(self.costs.index_lookup);
        if self.table.is_some() && self.db.is_tabled(name, arity) {
            return self.table_call(goal, name, arity, hdr);
        }
        if self.memo.is_some() {
            if let Some(status) = self.memo_consult(goal) {
                return status;
            }
        }
        let db = self.db.clone();
        let Some(pred) = db.predicate(name, arity) else {
            return self.error(format!("undefined predicate {}/{arity}", name.name()));
        };
        let key = match hdr {
            Some(h) if arity > 0 => IndexKey::of(&self.heap, self.heap.str_arg(h, 0)),
            _ => IndexKey::Any,
        };
        // Switch-on-term dispatch: one bucket fetch serves the candidate
        // count and the first two alternatives; clauses outside the chain
        // are never visited at all. (The interpreter oracle instead pays a
        // charged linear scan through `pred_next`.)
        let (first, second) = if self.compiled {
            let chain = pred.matching_chain(key);
            let candidates = chain.len();
            self.stats.clauses_skipped_by_index += (pred.clauses.len() - candidates) as u64;
            if candidates == 1 {
                self.stats.index_determinate_calls += 1;
            }
            if self.dispatch_trace {
                self.memo_events.push(EventKind::ClauseDispatch {
                    pred: format!("{}/{arity}", name.name()),
                    candidates,
                    determinate: candidates == 1,
                });
            }
            let Some(&first) = chain.first() else {
                return self.backtrack();
            };
            (first as usize, chain.get(1).map(|&o| o as usize))
        } else {
            let Some(first) = self.pred_next(pred, key, 0) else {
                return self.backtrack();
            };
            (first, self.pred_next(pred, key, first + 1))
        };
        let barrier_at_call = self.ctrl.len() as u32;
        if let Some(next) = second {
            self.push_choice(ChoicePoint {
                goal,
                alts: Alts::Clauses {
                    name,
                    arity,
                    key,
                    next,
                },
                cont: self.cont.clone(),
                trail: self.heap.trail_mark(),
                heap: self.heap.heap_mark(),
                barrier: barrier_at_call,
                shared: None,
            });
        }
        if self.try_clause_in(pred, name, arity, first, goal, barrier_at_call) {
            Status::Running
        } else {
            self.backtrack()
        }
    }

    /// Mode-aware clause lookup: the compiled path binary-searches the
    /// switch-on-term bucket chain (no per-clause work); the interpreter
    /// oracle runs the pre-indexing linear scan and pays `index_scan` per
    /// clause visited. Both return the *same* ordinal sequence — the
    /// chains are built to mirror the scan exactly.
    fn pred_next(&mut self, pred: &Predicate, key: IndexKey, from: usize) -> Option<usize> {
        if self.compiled {
            pred.next_matching(key, from)
        } else {
            let found = pred.next_matching_scan(key, from);
            let visited = match found {
                Some(f) => (f - from + 1) as u64,
                None => pred.clauses.len().saturating_sub(from) as u64,
            };
            self.charge(visited * self.costs.index_scan);
            found
        }
    }

    /// Run clause `idx` of `name/arity` against `goal`; on success push
    /// the body. Returns success. On failure the partial bindings are
    /// undone (heap garbage is reclaimed by the next choice-point
    /// restore). Dispatches to the compiled register code by default, or
    /// to the tree-walking interpreter oracle under
    /// [`ClauseExec::Interpreted`].
    pub(crate) fn try_clause(
        &mut self,
        name: Sym,
        arity: u32,
        idx: usize,
        goal: Cell,
        body_barrier: u32,
    ) -> bool {
        let db = self.db.clone();
        let pred = db.predicate(name, arity).expect("predicate vanished");
        self.try_clause_in(pred, name, arity, idx, goal, body_barrier)
    }

    /// [`Machine::try_clause`] with the predicate already in hand —
    /// `call_user` has just fetched it for the index dispatch, so the
    /// first clause attempt skips the second database lookup.
    fn try_clause_in(
        &mut self,
        pred: &Predicate,
        name: Sym,
        arity: u32,
        idx: usize,
        goal: Cell,
        body_barrier: u32,
    ) -> bool {
        let clause = Arc::clone(&pred.clauses[idx]);
        if self.compiled {
            return self.try_clause_compiled(name, arity, idx, &clause, goal, body_barrier);
        }
        let pre_trail = self.heap.trail_mark();
        let (head, body) = clause.instantiate(&mut self.heap);
        let cells = clause.arena_len() as u64;
        self.stats.heap_cells += cells;
        self.charge(cells * self.costs.heap_cell);
        match unify(&mut self.heap, goal, head) {
            Some(steps) => {
                self.stats.unify_steps += steps as u64;
                self.charge(steps as u64 * self.costs.unify_step);
                self.cont = cont::push(&self.cont, body, body_barrier);
                self.status = Status::Running;
                true
            }
            None => {
                let undone = self.heap.undo_to(pre_trail);
                self.stats.trail_undos += undone as u64;
                self.charge(undone as u64 * self.costs.trail_undo);
                false
            }
        }
    }

    /// Compiled clause execution: run the head's register code against
    /// the goal's argument cells (matching in place — no clause-arena
    /// copy), then run the body *neck* inline — arithmetic guards, `is`,
    /// and `=` execute straight off the step templates and slot
    /// registers, materializing nothing. A failing guard costs only the
    /// head match. An arithmetic if-then-else picks its branch here with
    /// no choice point. Only the first non-inlinable goal is built on the
    /// heap; any steps after it ride behind a `$body` continuation marker
    /// and are materialized one at a time as the resolvent reaches them.
    fn try_clause_compiled(
        &mut self,
        name: Sym,
        arity: u32,
        idx: usize,
        clause: &ace_logic::db::Clause,
        goal: Cell,
        body_barrier: u32,
    ) -> bool {
        let code = clause.code();
        let hdr = match self.heap.deref(goal) {
            Cell::Str(h) => Some(h),
            _ => None,
        };
        let pre_trail = self.heap.trail_mark();
        let mut slots = std::mem::take(&mut self.code_slots);
        let (ok, cost) = run_head(&mut self.heap, code, hdr, &mut slots);
        self.stats.code_cache_hits += 1;
        self.stats.heap_cells += cost.cells;
        self.stats.unify_steps += cost.unify_steps;
        self.charge(
            cost.instrs * self.costs.instr
                + cost.cells * self.costs.heap_cell
                + cost.unify_steps * self.costs.unify_step,
        );
        let ok = if ok {
            match code.body() {
                CompiledBody::Fact => {
                    self.status = Status::Running;
                    true
                }
                CompiledBody::Steps(_) => self.run_body_neck(
                    code,
                    0,
                    name,
                    arity,
                    idx,
                    &mut slots,
                    body_barrier,
                    pre_trail,
                ),
                CompiledBody::IfThenElse { cond, .. } => {
                    // Decide the branch now, with no choice point: the
                    // test is deterministic and binds nothing, so the
                    // generic machinery would cut the else-alternative
                    // immediately anyway.
                    let h = match cond.root {
                        Cell::Str(h) => h.0 as usize,
                        _ => unreachable!("if-then-else condition is a struct"),
                    };
                    let a =
                        arith::eval_template(&cond.cells, cond.cells[h + 1], &slots, &self.heap);
                    let b =
                        arith::eval_template(&cond.cells, cond.cells[h + 2], &slots, &self.heap);
                    match (a, b) {
                        (Some((a, o1)), Some((b, o2))) => {
                            let CompiledBody::IfThenElse { cond_op, .. } = code.body() else {
                                unreachable!()
                            };
                            let taken = arith::cmp_apply(*cond_op, a, b).expect("compiled test op");
                            self.charge(self.costs.instr + (o1 + o2 + 1) * self.costs.arith_op);
                            let branch = if taken { 1 } else { 2 };
                            self.run_body_neck(
                                code,
                                branch,
                                name,
                                arity,
                                idx,
                                &mut slots,
                                body_barrier,
                                pre_trail,
                            )
                        }
                        _ => {
                            // An operand is unbound or non-numeric: rebuild
                            // the whole if-then-else and let the generic
                            // control machinery raise the interpreter's
                            // exact error (or run a non-arithmetic path).
                            let (body, cells) = code.instantiate_body(&mut self.heap, &mut slots);
                            self.stats.heap_cells += cells as u64;
                            self.charge(cells as u64 * self.costs.heap_cell);
                            self.cont = cont::push(&self.cont, body, body_barrier);
                            self.status = Status::Running;
                            true
                        }
                    }
                }
            }
        } else {
            let undone = self.heap.undo_to(pre_trail);
            self.stats.trail_undos += undone as u64;
            self.charge(undone as u64 * self.costs.trail_undo);
            false
        };
        self.code_slots = slots;
        self.code_slots.clear();
        ok
    }

    /// Execute the leading inline-able steps of `branch` directly off the
    /// templates (the clause "neck"), then push the first real goal and —
    /// only if more than one goal remains — a `$body` marker carrying the
    /// frozen slot registers. Returns false (after undoing head bindings)
    /// if an inline guard fails.
    #[allow(clippy::too_many_arguments)]
    fn run_body_neck(
        &mut self,
        code: &ace_logic::CompiledCode,
        branch: u8,
        name: Sym,
        arity: u32,
        idx: usize,
        slots: &mut [Cell],
        barrier: u32,
        pre_trail: TrailMark,
    ) -> bool {
        let steps = code.steps(branch);
        let mut k = 0usize;
        while k < steps.len() {
            match self.inline_step(code, &steps[k], slots) {
                StepOutcome::Ok => k += 1,
                StepOutcome::Fail => {
                    let undone = self.heap.undo_to(pre_trail);
                    self.stats.trail_undos += undone as u64;
                    self.charge(undone as u64 * self.costs.trail_undo);
                    return false;
                }
                StepOutcome::NotInline => break,
            }
        }
        if k < steps.len() {
            let cells = code.init_fresh_slots(&mut self.heap, slots);
            self.stats.heap_cells += cells as u64;
            self.charge(cells as u64 * self.costs.heap_cell);
            if k + 1 < steps.len() {
                let slots_t = self.make_slots_term(code, slots);
                let marker = self.make_body_marker(name, arity, idx, branch, k + 1, slots_t);
                self.cont = cont::push(&self.cont, marker, barrier);
            }
            let (g, cells) = steps[k].tpl.instantiate(&mut self.heap, slots);
            self.stats.heap_cells += cells as u64;
            self.charge(cells as u64 * self.costs.heap_cell);
            self.cont = cont::push(&self.cont, g, barrier);
        }
        self.status = Status::Running;
        true
    }

    /// Try to run one body step without materializing it. `Fail` means a
    /// deterministic test failed (caller backtracks as if the clause body
    /// failed at that conjunct — nothing after it was ever built);
    /// `NotInline` means the step needs the generic machinery (a user
    /// goal, or an operand shape the inline evaluator bails on — the
    /// materialized form then reproduces interpreter errors exactly).
    fn inline_step(
        &mut self,
        code: &ace_logic::CompiledCode,
        st: &ace_logic::BodyStep,
        slots: &mut [Cell],
    ) -> StepOutcome {
        use ace_logic::code::{SLOT_BASE, UNSET_SLOT};
        match st.kind {
            StepKind::Goal => StepOutcome::NotInline,
            StepKind::Compare(op) => {
                let h = match st.tpl.root {
                    Cell::Str(h) => h.0 as usize,
                    _ => return StepOutcome::NotInline,
                };
                let a = arith::eval_template(&st.tpl.cells, st.tpl.cells[h + 1], slots, &self.heap);
                let b = arith::eval_template(&st.tpl.cells, st.tpl.cells[h + 2], slots, &self.heap);
                match (a, b) {
                    (Some((a, o1)), Some((b, o2))) => {
                        self.charge(self.costs.instr + (o1 + o2 + 1) * self.costs.arith_op);
                        match arith::cmp_apply(op, a, b) {
                            Some(true) => StepOutcome::Ok,
                            Some(false) => StepOutcome::Fail,
                            None => StepOutcome::NotInline,
                        }
                    }
                    _ => StepOutcome::NotInline,
                }
            }
            StepKind::Is => {
                let h = match st.tpl.root {
                    Cell::Str(h) => h.0 as usize,
                    _ => return StepOutcome::NotInline,
                };
                let Some((v, ops)) =
                    arith::eval_template(&st.tpl.cells, st.tpl.cells[h + 2], slots, &self.heap)
                else {
                    return StepOutcome::NotInline;
                };
                self.charge(self.costs.instr + ops * self.costs.arith_op);
                match st.tpl.cells[h + 1] {
                    Cell::Ref(a) if a.0 >= SLOT_BASE && a.0 != u32::MAX => {
                        let s = (a.0 - SLOT_BASE) as usize;
                        if slots[s] == UNSET_SLOT {
                            // First binding of a body-fresh variable: the
                            // value lives in the register alone — no heap
                            // cell, no trail entry, nothing to undo.
                            slots[s] = Cell::Int(v);
                            StepOutcome::Ok
                        } else {
                            let cell = slots[s];
                            match unify(&mut self.heap, cell, Cell::Int(v)) {
                                Some(steps) => {
                                    self.stats.unify_steps += steps as u64;
                                    self.charge(steps as u64 * self.costs.unify_step);
                                    StepOutcome::Ok
                                }
                                None => StepOutcome::Fail,
                            }
                        }
                    }
                    // Single-occurrence result variable: value discarded.
                    Cell::Ref(_) => StepOutcome::Ok,
                    Cell::Int(i) => {
                        if i == v {
                            StepOutcome::Ok
                        } else {
                            StepOutcome::Fail
                        }
                    }
                    _ => StepOutcome::NotInline,
                }
            }
            StepKind::Unify => {
                // Materialize the operands, then unify in place — skips
                // the dispatch round and the builtin table lookup.
                let cells = code.init_fresh_slots(&mut self.heap, slots);
                self.stats.heap_cells += cells as u64;
                self.charge(cells as u64 * self.costs.heap_cell);
                let (g, n) = st.tpl.instantiate(&mut self.heap, slots);
                self.stats.heap_cells += n as u64;
                self.charge(n as u64 * self.costs.heap_cell + self.costs.instr);
                let Cell::Str(gh) = self.heap.deref(g) else {
                    return StepOutcome::NotInline;
                };
                let a = self.heap.str_arg(gh, 0);
                let b = self.heap.str_arg(gh, 1);
                match unify(&mut self.heap, a, b) {
                    Some(steps) => {
                        self.stats.unify_steps += steps as u64;
                        self.charge(steps as u64 * self.costs.unify_step);
                        StepOutcome::Ok
                    }
                    None => StepOutcome::Fail,
                }
            }
        }
    }

    /// Freeze the slot registers into a `$slots/n` structure so the
    /// `$body` marker survives term copying (closures, or-engine state
    /// shipping, tabling freeze/thaw) like any other term.
    fn make_slots_term(&mut self, code: &ace_logic::CompiledCode, slots: &[Cell]) -> Cell {
        if code.nslots() == 0 {
            return Cell::Nil;
        }
        let t = self
            .heap
            .new_struct(body_slots_sym(), &slots[..code.nslots()]);
        let cells = code.nslots() as u64 + 1;
        self.stats.heap_cells += cells;
        self.charge(cells * self.costs.heap_cell);
        t
    }

    /// Build a `$body(Pack1, Pack2, Slots)` continuation marker: clause
    /// identity packed as `name<<32|arity` and `idx<<32|branch<<24|step`.
    /// The clause DB is immutable (no assert/retract), so the index stays
    /// valid for the marker's whole lifetime.
    #[allow(clippy::too_many_arguments)]
    fn make_body_marker(
        &mut self,
        name: Sym,
        arity: u32,
        idx: usize,
        branch: u8,
        step: usize,
        slots_term: Cell,
    ) -> Cell {
        let p1 = Cell::Int(((name.index() as i64) << 32) | arity as i64);
        let p2 = Cell::Int(((idx as i64) << 32) | ((branch as i64) << 24) | step as i64);
        let t = self.heap.new_struct(body_step_sym(), &[p1, p2, slots_term]);
        self.stats.heap_cells += 4;
        self.charge(4 * self.costs.heap_cell);
        t
    }

    /// A `$body` marker reached the front of the resolvent: reload the
    /// frozen slots, run any inline-able steps, then materialize and
    /// dispatch the next real goal (re-pushing a marker for whatever still
    /// remains). Backtracking into the middle of a body needs no special
    /// case: the choice point snapshotted the continuation *before* the
    /// marker existed, so retry starts from the clause head as usual.
    fn compiled_body_step(&mut self, hdr: ace_logic::Addr, barrier: u32) -> Status {
        let Cell::Int(p1) = self.heap.deref(self.heap.str_arg(hdr, 0)) else {
            unreachable!("malformed $body marker");
        };
        let Cell::Int(p2) = self.heap.deref(self.heap.str_arg(hdr, 1)) else {
            unreachable!("malformed $body marker");
        };
        let slots_t = self.heap.str_arg(hdr, 2);
        let name = Sym((p1 >> 32) as u32);
        let arity = (p1 & 0xffff_ffff) as u32;
        let idx = (p2 >> 32) as usize;
        let branch = ((p2 >> 24) & 0xff) as u8;
        let from = (p2 & 0xff_ffff) as usize;
        let db = self.db.clone();
        let pred = db
            .predicate(name, arity)
            .expect("marker predicate vanished");
        let clause = Arc::clone(&pred.clauses[idx]);
        let code = clause.code();

        let mut slots = std::mem::take(&mut self.code_slots);
        slots.clear();
        if let Cell::Str(sh) = self.heap.deref(slots_t) {
            for i in 0..code.nslots() as u32 {
                slots.push(self.heap.str_arg(sh, i));
            }
        }
        let steps = code.steps(branch);
        let mut k = from;
        while k < steps.len() {
            match self.inline_step(code, &steps[k], &mut slots) {
                StepOutcome::Ok => k += 1,
                StepOutcome::Fail => {
                    self.code_slots = slots;
                    self.code_slots.clear();
                    return self.backtrack();
                }
                StepOutcome::NotInline => break,
            }
        }
        if k >= steps.len() {
            self.code_slots = slots;
            self.code_slots.clear();
            self.status = Status::Running;
            return Status::Running;
        }
        if k + 1 < steps.len() {
            // Reuse the existing frozen-slots structure: inline `is`
            // results into UNSET registers are the only slot mutations,
            // and those steps are behind us now.
            let marker = self.make_body_marker(name, arity, idx, branch, k + 1, slots_t);
            self.cont = cont::push(&self.cont, marker, barrier);
        }
        let (g, cells) = steps[k].tpl.instantiate(&mut self.heap, &slots);
        self.stats.heap_cells += cells as u64;
        self.charge(cells as u64 * self.costs.heap_cell);
        self.code_slots = slots;
        self.code_slots.clear();
        // Dispatch the goal directly instead of pushing it and returning:
        // saves a continuation node alloc/pop per body goal. Recursion is
        // bounded — `dispatch` on a user goal lands in `try_clause`, which
        // pushes and returns.
        self.dispatch(g, barrier)
    }

    pub(crate) fn push_choice(&mut self, cp: ChoicePoint) {
        self.stats.choice_points += 1;
        self.charge(self.costs.choice_point_alloc);
        self.ctrl.push(CtrlFrame::Choice(cp));
    }

    /// SPO: materialize the procrastinated input marker now (the subgoal
    /// turned out nondeterministic — a surviving choice point needs the
    /// section delimited). The and-engine calls this at slot completion;
    /// choice points that were created and then cut or exhausted during
    /// the subgoal never force the marker (the paper's shallow-backtracking
    /// reference \[4\] plays the same role in &ACE).
    pub fn materialize_pending_marker(&mut self) {
        if let Some((parcall_id, slot)) = self.pending_marker.take() {
            self.push_marker(MarkerKind::Input, parcall_id, slot);
        }
    }

    /// Cut: discard all control frames at height >= `height` (bindings are
    /// kept — cut never untrails).
    pub(crate) fn cut_to(&mut self, height: u32) {
        while self.ctrl.len() > height as usize {
            match self.ctrl.pop().unwrap() {
                CtrlFrame::Choice(cp) => {
                    self.table_note_discarded(&cp.alts);
                    if let Some(shared) = cp.shared {
                        shared.owner_detached();
                    }
                }
                // Cutting across a parcall frame commits to its first
                // solution; its ext (slot generators) is dropped here.
                CtrlFrame::Parcall(_) | CtrlFrame::Marker(_) => {}
            }
        }
    }

    /// Backtrack to the most recent choice point and take the next
    /// alternative. Public so solution iteration can resume the search.
    pub fn backtrack(&mut self) -> Status {
        self.stats.backtracks += 1;
        loop {
            let Some(top_frame) = self.ctrl.last() else {
                self.status = Status::Failed;
                return Status::Failed;
            };
            match top_frame {
                CtrlFrame::Marker(m) => {
                    // Input/end section boundaries are transparent to local
                    // backtracking; a PDO fence is not — it reports the
                    // owner-executed subgoal above it as exhausted.
                    let fence = if m.kind == MarkerKind::Fence {
                        Some((m.parcall_id, m.slot))
                    } else {
                        None
                    };
                    self.charge(self.costs.frame_traverse);
                    self.stats.frame_traversals += 1;
                    self.ctrl.pop();
                    if let Some((fid, slot)) = fence {
                        self.status = Status::FenceHit(fid, slot);
                        return self.status.clone();
                    }
                }
                CtrlFrame::Parcall(_) => {
                    // Outside backtracking into a parallel call: hand over
                    // to the and-engine.
                    self.status = Status::ParcallRedo;
                    return Status::ParcallRedo;
                }
                CtrlFrame::Choice(cp) => {
                    // Snapshot the choice point, then restore machine state.
                    let top = self.ctrl.len() - 1;
                    let trail = cp.trail;
                    let heap_mark = cp.heap;
                    let cont = cp.cont.clone();
                    let barrier = cp.barrier;
                    let goal = cp.goal;
                    let shared = cp.shared.clone();
                    let alts = cp.alts.clone();

                    self.charge(self.costs.choice_point_retry);
                    let undone = self.heap.undo_to(trail);
                    self.stats.trail_undos += undone as u64;
                    self.charge(undone as u64 * self.costs.trail_undo);
                    self.heap.truncate_to(heap_mark);
                    self.cont = cont;
                    if !self.memo_watches.is_empty() {
                        self.memo_prune_watches();
                    }

                    // Published choice point: alternatives come from the
                    // shared pool, competed for with remote workers.
                    if let Some(shared) = shared {
                        let Alts::Clauses { name, arity, .. } = alts else {
                            panic!("shared non-clause choice point");
                        };
                        match shared.claim_next() {
                            Some(idx) => {
                                self.stats.alternatives_claimed += 1;
                                self.charge(self.costs.claim_alternative);
                                if self.dispatch_trace {
                                    self.memo_events.push(EventKind::ClauseRetry {
                                        pred: format!("{}/{arity}", name.name()),
                                    });
                                }
                                if self.try_clause(name, arity, idx, goal, barrier) {
                                    self.status = Status::Running;
                                    return Status::Running;
                                }
                                continue; // head failed: claim another
                            }
                            None => {
                                shared.owner_detached();
                                self.ctrl.pop();
                                continue;
                            }
                        }
                    }

                    match alts {
                        Alts::Clauses {
                            name,
                            arity,
                            key,
                            next: idx,
                        } => {
                            let db = self.db.clone();
                            let pred = db.predicate(name, arity).unwrap();
                            if self.dispatch_trace {
                                self.memo_events.push(EventKind::ClauseRetry {
                                    pred: format!("{}/{arity}", name.name()),
                                });
                            }
                            match self.pred_next(pred, key, idx + 1) {
                                Some(f) => {
                                    if let CtrlFrame::Choice(cp) = &mut self.ctrl[top] {
                                        if let Alts::Clauses { next, .. } = &mut cp.alts {
                                            *next = f;
                                        }
                                    }
                                }
                                None => {
                                    // last alternative: pop ("trust")
                                    self.ctrl.pop();
                                }
                            }
                            if self.try_clause(name, arity, idx, goal, barrier) {
                                self.status = Status::Running;
                                return Status::Running;
                            }
                            continue;
                        }
                        Alts::Disj { rhs } => {
                            self.ctrl.pop();
                            self.cont = cont::push(&self.cont, rhs, barrier);
                            self.status = Status::Running;
                            return Status::Running;
                        }
                        Alts::Between { var, next, hi } => {
                            if next >= hi {
                                self.ctrl.pop();
                            } else if let CtrlFrame::Choice(cp) = &mut self.ctrl[top] {
                                if let Alts::Between { next: n, .. } = &mut cp.alts {
                                    *n = next + 1;
                                }
                            }
                            let Cell::Ref(a) = self.heap.deref(var) else {
                                panic!("between var became bound across retry")
                            };
                            self.heap.bind(a, Cell::Int(next));
                            self.status = Status::Running;
                            return Status::Running;
                        }
                        Alts::Memo { entry, next } => {
                            if next + 1 >= entry.answers.len() {
                                self.ctrl.pop(); // last tabled answer
                            } else if let CtrlFrame::Choice(cp) = &mut self.ctrl[top] {
                                if let Alts::Memo { next: n, .. } = &mut cp.alts {
                                    *n = next + 1;
                                }
                            }
                            self.charge(self.costs.memo_lookup);
                            if self.memo_unify_answer(goal, &entry.answers[next]) {
                                self.status = Status::Running;
                                return Status::Running;
                            }
                            continue;
                        }
                        Alts::TableReplay { entry, next } => {
                            if next + 1 >= entry.answers.len() {
                                self.ctrl.pop(); // last stored answer
                            } else if let CtrlFrame::Choice(cp) = &mut self.ctrl[top] {
                                if let Alts::TableReplay { next: n, .. } = &mut cp.alts {
                                    *n = next + 1;
                                }
                            }
                            self.charge(self.costs.memo_lookup);
                            if self.memo_unify_answer(goal, &entry.answers[next]) {
                                self.status = Status::Running;
                                return Status::Running;
                            }
                            continue;
                        }
                        Alts::TableConsumer { subgoal, next } => {
                            if next < self.table_subgoals[subgoal].answers.len() {
                                // Advance the cursor in place — the frame
                                // may still grow, so the CP stays.
                                if let CtrlFrame::Choice(cp) = &mut self.ctrl[top] {
                                    if let Alts::TableConsumer { next: n, .. } = &mut cp.alts {
                                        *n = next + 1;
                                    }
                                }
                                self.charge(self.costs.memo_lookup);
                                let arena = self.table_subgoals[subgoal].answers[next].clone();
                                if self.memo_unify_answer(goal, &arena) {
                                    self.status = Status::Running;
                                    return Status::Running;
                                }
                                continue;
                            }
                            if self.table_subgoals[subgoal].complete {
                                self.ctrl.pop(); // answer set closed: spent
                                continue;
                            }
                            // Dry but incomplete: park until the leader's
                            // fixpoint loop lands new answers.
                            self.table_suspend(subgoal, next, goal);
                            continue;
                        }
                        Alts::TableGen {
                            subgoal,
                            name,
                            arity,
                            key,
                            next,
                        } => {
                            let db = self.db.clone();
                            let pred = db.predicate(name, arity).unwrap();
                            match self.pred_next(pred, key, next) {
                                Some(f) => {
                                    if let CtrlFrame::Choice(cp) = &mut self.ctrl[top] {
                                        if let Alts::TableGen { next: n, .. } = &mut cp.alts {
                                            *n = f + 1;
                                        }
                                    }
                                    // Clause bodies barrier above the
                                    // generator CP (cut stays local).
                                    if self.try_clause(name, arity, f, goal, (top + 1) as u32) {
                                        self.status = Status::Running;
                                        return Status::Running;
                                    }
                                    continue;
                                }
                                None => {
                                    // Clause pool dry: completion check
                                    // (resume, complete, or fold outward).
                                    self.table_gen_exhausted(subgoal, top);
                                    continue;
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    pub(crate) fn error(&mut self, msg: impl Into<String>) -> Status {
        let s = Status::Error(msg.into());
        self.status = s.clone();
        s
    }

    /// Render a term of this machine's heap (for solutions & diagnostics).
    pub fn render(&self, t: Cell) -> String {
        term_to_string(&self.heap, t)
    }
}
