//! Control-stack frames: the state-saving data structures of §2 of the
//! paper (Figure 2), made concrete.
//!
//! * [`ChoicePoint`] — "allocated whenever a non-deterministic goal is
//!   called; it also serves as a source of or-parallel work."
//! * [`ParcallFrame`] — "allocated when a parallel conjunction is called;
//!   it serves as a source of and-parallel work."
//! * [`Marker`] — input/end markers "delimit the segments of stacks
//!   corresponding to goals taken from a parallel conjunction."
//!
//! The optimizations are, concretely, policies about when these frames can
//! be *reused* (LPCO, LAO), *never allocated* (SPO, PDO), or traversed in
//! one step instead of many (flattening).

use std::any::Any;
use std::sync::Arc;

use ace_logic::db::IndexKey;
use ace_logic::heap::HeapMark;
use ace_logic::{Cell, Sym, TrailMark};
use ace_memo::MemoEntry;
use ace_table::TableEntry;

use crate::cont::Cont;

/// The untried alternatives of a choice point.
#[derive(Debug, Clone)]
pub enum Alts {
    /// Remaining clauses of a user predicate call: try clause indices
    /// `>= next` whose index key may match `key`.
    Clauses {
        name: Sym,
        arity: u32,
        key: IndexKey,
        next: usize,
    },
    /// The right branch of a `;`/2 disjunction.
    Disj { rhs: Cell },
    /// `between/3` enumeration: bind `var` to `next..=hi`.
    Between { var: Cell, next: i64, hi: i64 },
    /// Remaining tabled answers of a memoized call: thaw and unify
    /// `entry.answers[next..]`. Never published to the or-tree — the
    /// answer set is already complete, so there is nothing to claim.
    Memo { entry: Arc<MemoEntry>, next: usize },
    /// Remaining answers of an already-**complete** tabled subgoal from
    /// the shared table space. Like `Alts::Memo`, never published.
    TableReplay { entry: Arc<TableEntry>, next: usize },
    /// A consumer of a machine-local tabled subgoal under evaluation:
    /// unify answers `>= next` of the local answer list; when the list
    /// runs dry, either finish (subgoal complete) or **suspend** the
    /// continuation as a frozen closure until new answers land. Never
    /// published — local SLG state is meaningless on another machine.
    TableConsumer { subgoal: usize, next: usize },
    /// The generator choice point of a machine-local tabled subgoal:
    /// remaining program clauses feeding the subgoal's failure-driven
    /// answer loop. Exhaustion triggers the SCC completion check. Never
    /// published (see `Machine::table_publish_floor`).
    TableGen {
        subgoal: usize,
        name: Sym,
        arity: u32,
        key: IndexKey,
        next: usize,
    },
}

/// Hook installed by the or-parallel engine when a choice point is made
/// **public**: its alternatives move into a shared pool that both the
/// owning machine (on backtracking) and idle remote workers (work finding)
/// claim from atomically.
pub trait SharedChoice: Send + Sync {
    /// Claim the next untried clause index; `None` when exhausted.
    fn claim_next(&self) -> Option<usize>;
    /// The owner backtracked past this node (its local stack section is
    /// gone); remote workers may still hold claims.
    fn owner_detached(&self);
    /// Diagnostic id.
    fn node_id(&self) -> u64;
    /// Publication epoch of the node this hook serves (bumped by LAO
    /// reuse). Implementations without epochs report 0.
    fn epoch(&self) -> u64 {
        0
    }
}

/// A choice point: everything needed to restore the computation to the
/// state at a nondeterministic call and try the next alternative.
pub struct ChoicePoint {
    /// The call that created this choice point (re-unified on retry).
    pub goal: Cell,
    pub alts: Alts,
    /// Continuation to restore on retry.
    pub cont: Cont,
    pub trail: TrailMark,
    pub heap: HeapMark,
    /// Cut barrier active at the call (restored on retry).
    pub barrier: u32,
    /// Set when the or-engine has published this choice point; alternatives
    /// are then claimed through the shared pool instead of `alts`.
    pub shared: Option<Arc<dyn SharedChoice>>,
}

impl std::fmt::Debug for ChoicePoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChoicePoint")
            .field("alts", &self.alts)
            .field("trail", &self.trail)
            .field("heap", &self.heap)
            .field("barrier", &self.barrier)
            .field("shared", &self.shared.as_ref().map(|s| s.node_id()))
            .finish_non_exhaustive()
    }
}

/// A parallel-conjunction descriptor. One slot per subgoal; the and-engine
/// stores its orchestration state in `ext`.
pub struct ParcallFrame {
    /// Monotonic id (diagnostics, marker linkage).
    pub id: u64,
    /// The subgoal terms, in source order, in the owning machine's heap.
    pub branches: Vec<Cell>,
    /// Continuation after the parallel conjunction.
    pub cont: Cont,
    pub trail: TrailMark,
    pub heap: HeapMark,
    pub barrier: u32,
    /// And-engine attachment (slot states, generators, scheduling handle).
    pub ext: Option<Box<dyn Any + Send>>,
}

impl std::fmt::Debug for ParcallFrame {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ParcallFrame")
            .field("id", &self.id)
            .field("branches", &self.branches.len())
            .field("trail", &self.trail)
            .field("ext", &self.ext.is_some())
            .finish_non_exhaustive()
    }
}

/// Which end of a stack section a marker delimits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MarkerKind {
    /// "indicates the beginning of a new execution" of a picked-up subgoal.
    Input,
    /// Marks the end of the subgoal's execution.
    End,
    /// A backtrack fence below an owner-executed (PDO) subgoal: reaching it
    /// while backtracking means the subgoal is exhausted, which the engine
    /// must interpret as failure of the parallel call rather than letting
    /// backtracking leak into the preceding inline section.
    Fence,
}

/// A stack-section marker. The paper notes these "store various
/// information" — the fields here mirror that: linkage back to the parcall
/// frame and slot, plus the trail extent of the section for backtracking.
#[derive(Debug, Clone)]
pub struct Marker {
    pub kind: MarkerKind,
    /// Id of the parcall frame whose subgoal this section executes.
    pub parcall_id: u64,
    /// Slot index within that frame.
    pub slot: u32,
    /// Trail position at section start (Input) / end (End).
    pub trail: TrailMark,
    /// Heap position at section start (Input) / end (End).
    pub heap: HeapMark,
}

/// One frame of the control stack.
#[derive(Debug)]
pub enum CtrlFrame {
    Choice(ChoicePoint),
    Parcall(ParcallFrame),
    Marker(Marker),
}

impl CtrlFrame {
    pub fn is_choice(&self) -> bool {
        matches!(self, CtrlFrame::Choice(_))
    }

    pub fn is_parcall(&self) -> bool {
        matches!(self, CtrlFrame::Parcall(_))
    }

    pub fn is_marker(&self) -> bool {
        matches!(self, CtrlFrame::Marker(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_kind_predicates() {
        let m = CtrlFrame::Marker(Marker {
            kind: MarkerKind::Input,
            parcall_id: 1,
            slot: 0,
            trail: TrailMark(0),
            heap: HeapMark(0),
        });
        assert!(m.is_marker());
        assert!(!m.is_choice());
        assert!(!m.is_parcall());
    }

    #[test]
    fn choicepoint_debug_does_not_panic() {
        let cp = ChoicePoint {
            goal: Cell::Nil,
            alts: Alts::Disj { rhs: Cell::Nil },
            cont: None,
            trail: TrailMark(0),
            heap: HeapMark(0),
            barrier: 0,
            shared: None,
        };
        let s = format!("{cp:?}");
        assert!(s.contains("ChoicePoint"));
    }
}
