//! Builtin predicates.
//!
//! Control constructs (`,`, `&`, `;`, `->`, `!`, `\+`, `call/N`) are
//! handled directly in [`crate::machine`]; everything here is a "real"
//! builtin dispatched by `(functor, arity)`. Returns `None` when the goal
//! is not a builtin (falls through to user-predicate resolution).

use ace_logic::copy::copy_term_within;
use ace_logic::sym::{sym, wk};
use ace_logic::term::{compare as term_compare, is_ground, view, ListIter, TermView};
use ace_logic::unify::{struct_eq, unify};
use ace_logic::{Addr, Cell, Sym};

use crate::arith;
use crate::frames::{Alts, ChoicePoint};
use crate::machine::{Machine, Status};

/// Builtins not in the well-known table, interned once: `dispatch` runs
/// on every goal that falls through to user-predicate resolution, so it
/// must not pay the interner's lock + string hash per probe.
struct ExtraSyms {
    tab: Sym,
    findall: Sym,
    msort: Sym,
    sort: Sym,
    reverse: Sym,
    nth1: Sym,
    answer: Sym,
}

fn extra() -> &'static ExtraSyms {
    static S: std::sync::OnceLock<ExtraSyms> = std::sync::OnceLock::new();
    S.get_or_init(|| ExtraSyms {
        tab: sym("tab"),
        findall: sym("findall"),
        msort: sym("msort"),
        sort: sym("sort"),
        reverse: sym("reverse"),
        nth1: sym("nth1"),
        answer: sym("$answer"),
    })
}

/// Try to execute `f/n` (with argument block at `hdr`) as a builtin.
pub(crate) fn dispatch(m: &mut Machine, f: Sym, n: u32, hdr: Addr) -> Option<Status> {
    let w = wk();
    let xs = extra();
    let s = match (f, n) {
        (x, 2) if x == w.unify => builtin_unify(m, hdr),
        (x, 2) if x == w.not_unify => builtin_not_unify(m, hdr),
        (x, 2) if x == w.struct_eq => builtin_struct_eq(m, hdr, true),
        (x, 2) if x == w.struct_ne => builtin_struct_eq(m, hdr, false),
        (x, 2) if x == w.is => builtin_is(m, hdr),
        (x, 2)
            if x == w.arith_eq
                || x == w.arith_ne
                || x == w.lt
                || x == w.gt
                || x == w.le
                || x == w.ge =>
        {
            builtin_arith_compare(m, f, hdr)
        }
        (x, 1) if x == w.var_ => builtin_type_test(m, hdr, TypeTest::Var),
        (x, 1) if x == w.nonvar => builtin_type_test(m, hdr, TypeTest::Nonvar),
        (x, 1) if x == w.atom_ => builtin_type_test(m, hdr, TypeTest::Atom),
        (x, 1) if x == w.number || x == w.integer => builtin_type_test(m, hdr, TypeTest::Integer),
        (x, 1) if x == w.atomic => builtin_type_test(m, hdr, TypeTest::Atomic),
        (x, 1) if x == w.compound => builtin_type_test(m, hdr, TypeTest::Compound),
        (x, 1) if x == w.ground => builtin_ground(m, hdr),
        (x, 3) if x == w.functor => builtin_functor(m, hdr),
        (x, 3) if x == w.arg => builtin_arg(m, hdr),
        (x, 2) if x == w.univ => builtin_univ(m, hdr),
        (x, 2) if x == w.copy_term => builtin_copy_term(m, hdr),
        (x, 2) if x == w.length => builtin_length(m, hdr),
        (x, 3) if x == w.between => builtin_between(m, hdr),
        (x, 3) if x == w.compare => builtin_compare3(m, hdr),
        (x, 2) if x == w.term_lt || x == w.term_gt || x == w.term_le || x == w.term_ge => {
            builtin_term_order(m, f, hdr)
        }
        (x, 1) if x == w.write => builtin_write(m, hdr, false),
        (x, 1) if x == w.writeln => builtin_write(m, hdr, true),
        (x, 1) if x == xs.tab => builtin_tab(m, hdr),
        (x, 3) if x == xs.findall => builtin_findall(m, hdr),
        (x, 2) if x == xs.msort => builtin_sort(m, hdr, false),
        (x, 2) if x == xs.sort => builtin_sort(m, hdr, true),
        (x, 2) if x == xs.reverse => builtin_reverse(m, hdr),
        (x, 3) if x == xs.nth1 => builtin_nth1(m, hdr),
        (x, 1) if x == xs.answer => builtin_answer(m, hdr),
        _ => return None,
    };
    Some(s)
}

/// `findall(Template, Goal, Bag)`: run `Goal` to exhaustion on a private
/// sub-machine and collect a copy of `Template` for every solution.
/// The sub-machine's cost is charged to this machine (the caller pays for
/// the sub-search), and `&` inside the goal runs sequentially (findall is
/// an all-solutions barrier).
fn builtin_findall(m: &mut Machine, hdr: Addr) -> Status {
    m.charge(m.costs.builtin);
    let template = m.heap.str_arg(hdr, 0);
    let goal = m.heap.str_arg(hdr, 1);
    let bag = m.heap.str_arg(hdr, 2);

    let mut sub = Machine::new(m.db().clone(), m.costs().clone());
    sub.set_clause_exec(m.clause_exec());
    // ship template+goal jointly so they keep sharing variables
    let pair = m.heap.new_struct(sym("$findall"), &[template, goal]);
    let out = ace_logic::copy::copy_term(&m.heap, pair, &mut sub.heap);
    let Cell::Str(phdr) = out.root else {
        unreachable!()
    };
    let sub_template = sub.heap.str_arg(phdr, 0);
    let sub_goal = sub.heap.str_arg(phdr, 1);
    m.stats.cells_copied += out.cells_copied as u64;
    m.charge(out.cells_copied as u64 * m.costs.heap_cell);

    sub.set_query(sub_goal);
    let mut items: Vec<Cell> = Vec::new();
    loop {
        match sub.run_to_completion() {
            Status::Solution => {
                let inst = ace_logic::copy::copy_term(&sub.heap, sub_template, &mut m.heap);
                m.stats.cells_copied += inst.cells_copied as u64;
                items.push(inst.root);
                sub.backtrack();
            }
            Status::Failed => break,
            Status::Error(e) => {
                m.charge(sub.stats.cost);
                return m.error(format!("findall/3: {e}"));
            }
            other => {
                m.charge(sub.stats.cost);
                return m.error(format!("findall/3: unexpected sub-status {other:?}"));
            }
        }
    }
    m.charge(sub.stats.cost);
    let list = m.heap.list(&items);
    unify_or_backtrack(m, bag, list)
}

/// `msort/2` (order-preserving duplicates) and `sort/2` (dedup) by the
/// standard order of terms.
fn builtin_sort(m: &mut Machine, hdr: Addr, dedup: bool) -> Status {
    m.charge(m.costs.builtin);
    let input = m.heap.str_arg(hdr, 0);
    let out = m.heap.str_arg(hdr, 1);
    let Some(mut items) = ace_logic::term::proper_list(&m.heap, input) else {
        return m.error("sort/2: proper list expected");
    };
    m.charge((items.len() as u64) * (64 - (items.len() as u64).leading_zeros() as u64).max(1));
    items.sort_by(|a, b| term_compare(&m.heap, *a, *b));
    if dedup {
        items.dedup_by(|a, b| term_compare(&m.heap, *a, *b).is_eq());
    }
    let list = m.heap.list(&items);
    unify_or_backtrack(m, out, list)
}

fn builtin_reverse(m: &mut Machine, hdr: Addr) -> Status {
    m.charge(m.costs.builtin);
    let input = m.heap.str_arg(hdr, 0);
    let out = m.heap.str_arg(hdr, 1);
    let Some(mut items) = ace_logic::term::proper_list(&m.heap, input) else {
        return m.error("reverse/2: proper list expected");
    };
    items.reverse();
    m.charge(items.len() as u64);
    let list = m.heap.list(&items);
    unify_or_backtrack(m, out, list)
}

/// `nth1(Index, List, Elem)` with a bound integer index.
fn builtin_nth1(m: &mut Machine, hdr: Addr) -> Status {
    m.charge(m.costs.builtin);
    let idx = m.heap.str_arg(hdr, 0);
    let list = m.heap.str_arg(hdr, 1);
    let elem = m.heap.str_arg(hdr, 2);
    let TermView::Int(i) = view(&m.heap, idx) else {
        return m.error("nth1/3: bound integer index expected");
    };
    if i < 1 {
        return m.backtrack();
    }
    let mut it = ListIter::new(&m.heap, list);
    match it.nth((i - 1) as usize) {
        Some(cell) => unify_or_backtrack(m, elem, cell),
        None => m.backtrack(),
    }
}

/// Internal `$answer(['X'=V, ...])`: record the rendered bindings as one
/// solution line (or-parallel solution collection; survives state copying
/// because it rides in the continuation).
fn builtin_answer(m: &mut Machine, hdr: Addr) -> Status {
    m.charge(m.costs.builtin);
    let list = m.heap.str_arg(hdr, 0);
    let mut parts: Vec<String> = Vec::new();
    for item in ListIter::new(&m.heap, list).collect::<Vec<_>>() {
        if let TermView::Struct(f, 2, phdr) = view(&m.heap, item) {
            if f == wk().unify {
                // the name side is a variable-name atom: render it raw
                let name = match view(&m.heap, m.heap.str_arg(phdr, 0)) {
                    TermView::Atom(s) => s.name(),
                    _ => m.render(m.heap.str_arg(phdr, 0)),
                };
                let val = m.render(m.heap.str_arg(phdr, 1));
                parts.push(format!("{name}={val}"));
                continue;
            }
        }
        parts.push(m.render(item));
    }
    parts.sort();
    m.answers.push(parts.join(", "));
    m.stats.solutions += 1;
    succeed(m)
}

fn succeed(m: &mut Machine) -> Status {
    m.status = Status::Running;
    Status::Running
}

fn builtin_unify(m: &mut Machine, hdr: Addr) -> Status {
    m.charge(m.costs.builtin);
    let a = m.heap.str_arg(hdr, 0);
    let b = m.heap.str_arg(hdr, 1);
    let pre = m.heap.trail_mark();
    match unify(&mut m.heap, a, b) {
        Some(steps) => {
            m.stats.unify_steps += steps as u64;
            m.charge(steps as u64 * m.costs.unify_step);
            succeed(m)
        }
        None => {
            m.heap.undo_to(pre);
            m.backtrack()
        }
    }
}

fn builtin_not_unify(m: &mut Machine, hdr: Addr) -> Status {
    m.charge(m.costs.builtin);
    let a = m.heap.str_arg(hdr, 0);
    let b = m.heap.str_arg(hdr, 1);
    let pre = m.heap.trail_mark();
    let unified = unify(&mut m.heap, a, b).is_some();
    m.heap.undo_to(pre);
    if unified {
        m.backtrack()
    } else {
        succeed(m)
    }
}

fn builtin_struct_eq(m: &mut Machine, hdr: Addr, want_eq: bool) -> Status {
    m.charge(m.costs.builtin);
    let a = m.heap.str_arg(hdr, 0);
    let b = m.heap.str_arg(hdr, 1);
    if struct_eq(&m.heap, a, b) == want_eq {
        succeed(m)
    } else {
        m.backtrack()
    }
}

fn builtin_is(m: &mut Machine, hdr: Addr) -> Status {
    m.charge(m.costs.builtin);
    let lhs = m.heap.str_arg(hdr, 0);
    let rhs = m.heap.str_arg(hdr, 1);
    match arith::eval(&m.heap, rhs) {
        Ok((v, ops)) => {
            m.charge(ops as u64 * m.costs.arith_op);
            let pre = m.heap.trail_mark();
            match unify(&mut m.heap, lhs, Cell::Int(v)) {
                Some(_) => succeed(m),
                None => {
                    m.heap.undo_to(pre);
                    m.backtrack()
                }
            }
        }
        Err(e) => m.error(format!("is/2: {e}")),
    }
}

fn builtin_arith_compare(m: &mut Machine, op: Sym, hdr: Addr) -> Status {
    m.charge(m.costs.builtin);
    let a = m.heap.str_arg(hdr, 0);
    let b = m.heap.str_arg(hdr, 1);
    match arith::compare(&m.heap, op, a, b) {
        Ok((true, ops)) => {
            m.charge(ops as u64 * m.costs.arith_op);
            succeed(m)
        }
        Ok((false, ops)) => {
            m.charge(ops as u64 * m.costs.arith_op);
            m.backtrack()
        }
        Err(e) => m.error(format!("{}/2: {e}", op.name())),
    }
}

enum TypeTest {
    Var,
    Nonvar,
    Atom,
    Integer,
    Atomic,
    Compound,
}

fn builtin_type_test(m: &mut Machine, hdr: Addr, t: TypeTest) -> Status {
    m.charge(m.costs.builtin);
    let v = view(&m.heap, m.heap.str_arg(hdr, 0));
    let ok = match t {
        TypeTest::Var => matches!(v, TermView::Var(_)),
        TypeTest::Nonvar => !matches!(v, TermView::Var(_)),
        TypeTest::Atom => matches!(v, TermView::Atom(_) | TermView::Nil),
        TypeTest::Integer => matches!(v, TermView::Int(_)),
        TypeTest::Atomic => matches!(v, TermView::Atom(_) | TermView::Int(_) | TermView::Nil),
        TypeTest::Compound => {
            matches!(v, TermView::Struct(..) | TermView::List(_))
        }
    };
    if ok {
        succeed(m)
    } else {
        m.backtrack()
    }
}

fn builtin_ground(m: &mut Machine, hdr: Addr) -> Status {
    m.charge(m.costs.builtin);
    let t = m.heap.str_arg(hdr, 0);
    if is_ground(&m.heap, t) {
        succeed(m)
    } else {
        m.backtrack()
    }
}

fn builtin_functor(m: &mut Machine, hdr: Addr) -> Status {
    m.charge(m.costs.builtin);
    let t = m.heap.str_arg(hdr, 0);
    let name = m.heap.str_arg(hdr, 1);
    let arity = m.heap.str_arg(hdr, 2);
    match view(&m.heap, t) {
        TermView::Var(_) => {
            // construct: functor(T, Name, Arity)
            let nv = view(&m.heap, name);
            let av = view(&m.heap, arity);
            let (TermView::Int(a), true) = (av, !matches!(nv, TermView::Var(_))) else {
                return m.error("functor/3: insufficiently instantiated");
            };
            if !(0..=1_000_000).contains(&a) {
                return m.error("functor/3: bad arity");
            }
            let built = match (nv, a) {
                (TermView::Atom(s), 0) => Cell::Atom(s),
                (TermView::Int(i), 0) => Cell::Int(i),
                (TermView::Nil, 0) => Cell::Nil,
                (TermView::Atom(s), a) => {
                    let args: Vec<Cell> = (0..a).map(|_| m.heap.new_var()).collect();
                    m.stats.heap_cells += a as u64 + 1;
                    if s == wk().dot && a == 2 {
                        m.heap.cons(args[0], args[1])
                    } else {
                        m.heap.new_struct(s, &args)
                    }
                }
                _ => return m.error("functor/3: bad name/arity"),
            };
            unify_or_backtrack(m, t, built)
        }
        TermView::Atom(s) => {
            let pre = m.heap.trail_mark();
            if unify(&mut m.heap, name, Cell::Atom(s)).is_some()
                && unify(&mut m.heap, arity, Cell::Int(0)).is_some()
            {
                succeed(m)
            } else {
                m.heap.undo_to(pre);
                m.backtrack()
            }
        }
        TermView::Int(i) => {
            let pre = m.heap.trail_mark();
            if unify(&mut m.heap, name, Cell::Int(i)).is_some()
                && unify(&mut m.heap, arity, Cell::Int(0)).is_some()
            {
                succeed(m)
            } else {
                m.heap.undo_to(pre);
                m.backtrack()
            }
        }
        TermView::Nil => {
            let pre = m.heap.trail_mark();
            if unify(&mut m.heap, name, Cell::Nil).is_some()
                && unify(&mut m.heap, arity, Cell::Int(0)).is_some()
            {
                succeed(m)
            } else {
                m.heap.undo_to(pre);
                m.backtrack()
            }
        }
        TermView::Struct(f, a, _) => {
            let pre = m.heap.trail_mark();
            if unify(&mut m.heap, name, Cell::Atom(f)).is_some()
                && unify(&mut m.heap, arity, Cell::Int(a as i64)).is_some()
            {
                succeed(m)
            } else {
                m.heap.undo_to(pre);
                m.backtrack()
            }
        }
        TermView::List(_) => {
            let pre = m.heap.trail_mark();
            let dot = Cell::Atom(wk().dot);
            if unify(&mut m.heap, name, dot).is_some()
                && unify(&mut m.heap, arity, Cell::Int(2)).is_some()
            {
                succeed(m)
            } else {
                m.heap.undo_to(pre);
                m.backtrack()
            }
        }
    }
}

fn builtin_arg(m: &mut Machine, hdr: Addr) -> Status {
    m.charge(m.costs.builtin);
    let n = m.heap.str_arg(hdr, 0);
    let t = m.heap.str_arg(hdr, 1);
    let a = m.heap.str_arg(hdr, 2);
    let TermView::Int(i) = view(&m.heap, n) else {
        return m.error("arg/3: index must be an integer");
    };
    let picked = match view(&m.heap, t) {
        TermView::Struct(_, arity, shdr) => {
            if i < 1 || i as u32 > arity {
                return m.backtrack();
            }
            m.heap.str_arg(shdr, (i - 1) as u32)
        }
        TermView::List(p) => match i {
            1 => m.heap.lst_head(p),
            2 => m.heap.lst_tail(p),
            _ => return m.backtrack(),
        },
        _ => return m.error("arg/3: compound expected"),
    };
    unify_or_backtrack(m, a, picked)
}

fn builtin_univ(m: &mut Machine, hdr: Addr) -> Status {
    m.charge(m.costs.builtin);
    let t = m.heap.str_arg(hdr, 0);
    let l = m.heap.str_arg(hdr, 1);
    match view(&m.heap, t) {
        TermView::Var(_) => {
            // construct from list
            let Some(items) = ace_logic::term::proper_list(&m.heap, l) else {
                return m.error("=../2: list expected");
            };
            if items.is_empty() {
                return m.error("=../2: empty list");
            }
            let head = view(&m.heap, items[0]);
            let built = match (head, items.len()) {
                (TermView::Atom(s), 1) => Cell::Atom(s),
                (TermView::Int(i), 1) => Cell::Int(i),
                (TermView::Nil, 1) => Cell::Nil,
                (TermView::Atom(s), _) => {
                    if s == wk().dot && items.len() == 3 {
                        m.heap.cons(items[1], items[2])
                    } else {
                        m.heap.new_struct(s, &items[1..])
                    }
                }
                _ => return m.error("=../2: bad functor"),
            };
            unify_or_backtrack(m, t, built)
        }
        TermView::Atom(s) => {
            let lst = m.heap.list(&[Cell::Atom(s)]);
            unify_or_backtrack(m, l, lst)
        }
        TermView::Int(i) => {
            let lst = m.heap.list(&[Cell::Int(i)]);
            unify_or_backtrack(m, l, lst)
        }
        TermView::Nil => {
            let lst = m.heap.list(&[Cell::Nil]);
            unify_or_backtrack(m, l, lst)
        }
        TermView::Struct(f, n, shdr) => {
            let mut items = vec![Cell::Atom(f)];
            items.extend((0..n).map(|i| m.heap.str_arg(shdr, i)));
            let lst = m.heap.list(&items);
            unify_or_backtrack(m, l, lst)
        }
        TermView::List(p) => {
            let items = vec![Cell::Atom(wk().dot), m.heap.lst_head(p), m.heap.lst_tail(p)];
            let lst = m.heap.list(&items);
            unify_or_backtrack(m, l, lst)
        }
    }
}

fn builtin_copy_term(m: &mut Machine, hdr: Addr) -> Status {
    m.charge(m.costs.builtin);
    let t = m.heap.str_arg(hdr, 0);
    let c = m.heap.str_arg(hdr, 1);
    let out = copy_term_within(&mut m.heap, t);
    m.stats.cells_copied += out.cells_copied as u64;
    m.charge(out.cells_copied as u64 * m.costs.heap_cell);
    unify_or_backtrack(m, c, out.root)
}

fn builtin_length(m: &mut Machine, hdr: Addr) -> Status {
    m.charge(m.costs.builtin);
    let l = m.heap.str_arg(hdr, 0);
    let n = m.heap.str_arg(hdr, 1);
    // Walk the list as far as it is instantiated.
    let mut count = 0i64;
    let mut it = ListIter::new(&m.heap, l);
    for _ in it.by_ref() {
        count += 1;
    }
    let rest = it.rest();
    match (view(&m.heap, rest), view(&m.heap, n)) {
        (TermView::Nil, _) => unify_or_backtrack(m, n, Cell::Int(count)),
        (TermView::Var(_), TermView::Int(total)) => {
            if total < count {
                return m.backtrack();
            }
            // extend with fresh variables up to the requested length
            let mut tail = Cell::Nil;
            let extra = (total - count) as usize;
            let vars: Vec<Cell> = (0..extra).map(|_| m.heap.new_var()).collect();
            for &v in vars.iter().rev() {
                tail = m.heap.cons(v, tail);
            }
            m.stats.heap_cells += (extra * 3) as u64;
            unify_or_backtrack(m, rest, tail)
        }
        _ => m.error("length/2: insufficiently instantiated"),
    }
}

fn builtin_between(m: &mut Machine, hdr: Addr) -> Status {
    m.charge(m.costs.builtin);
    let lo_t = m.heap.str_arg(hdr, 0);
    let hi_t = m.heap.str_arg(hdr, 1);
    let x = m.heap.str_arg(hdr, 2);
    let (Ok((lo, o1)), Ok((hi, o2))) = (arith::eval(&m.heap, lo_t), arith::eval(&m.heap, hi_t))
    else {
        return m.error("between/3: bounds must evaluate to integers");
    };
    m.charge((o1 + o2) as u64 * m.costs.arith_op);
    match view(&m.heap, x) {
        TermView::Int(i) => {
            if lo <= i && i <= hi {
                succeed(m)
            } else {
                m.backtrack()
            }
        }
        TermView::Var(a) => {
            if lo > hi {
                return m.backtrack();
            }
            if lo < hi {
                m.push_choice(ChoicePoint {
                    goal: x,
                    alts: Alts::Between {
                        var: x,
                        next: lo + 1,
                        hi,
                    },
                    cont: m.cont.clone(),
                    trail: m.heap.trail_mark(),
                    heap: m.heap.heap_mark(),
                    barrier: m.ctrl.len() as u32,
                    shared: None,
                });
            }
            m.heap.bind(a, Cell::Int(lo));
            succeed(m)
        }
        _ => m.error("between/3: integer or variable expected"),
    }
}

fn builtin_compare3(m: &mut Machine, hdr: Addr) -> Status {
    m.charge(m.costs.builtin);
    let order = m.heap.str_arg(hdr, 0);
    let a = m.heap.str_arg(hdr, 1);
    let b = m.heap.str_arg(hdr, 2);
    let o = term_compare(&m.heap, a, b);
    let atom = match o {
        std::cmp::Ordering::Less => Cell::Atom(sym("<")),
        std::cmp::Ordering::Equal => Cell::Atom(sym("=")),
        std::cmp::Ordering::Greater => Cell::Atom(sym(">")),
    };
    unify_or_backtrack(m, order, atom)
}

fn builtin_term_order(m: &mut Machine, op: Sym, hdr: Addr) -> Status {
    m.charge(m.costs.builtin);
    let a = m.heap.str_arg(hdr, 0);
    let b = m.heap.str_arg(hdr, 1);
    let o = term_compare(&m.heap, a, b);
    let w = wk();
    use std::cmp::Ordering::*;
    let ok = if op == w.term_lt {
        o == Less
    } else if op == w.term_gt {
        o == Greater
    } else if op == w.term_le {
        o != Greater
    } else {
        o != Less
    };
    if ok {
        succeed(m)
    } else {
        m.backtrack()
    }
}

fn builtin_write(m: &mut Machine, hdr: Addr, newline: bool) -> Status {
    m.charge(m.costs.builtin);
    let t = m.heap.str_arg(hdr, 0);
    let s = m.render(t);
    m.output.push_str(&s);
    if newline {
        m.output.push('\n');
    }
    succeed(m)
}

fn builtin_tab(m: &mut Machine, hdr: Addr) -> Status {
    m.charge(m.costs.builtin);
    let t = m.heap.str_arg(hdr, 0);
    match arith::eval(&m.heap, t) {
        Ok((n, _)) if n >= 0 => {
            for _ in 0..n.min(10_000) {
                m.output.push(' ');
            }
            succeed(m)
        }
        _ => m.error("tab/1: non-negative integer expected"),
    }
}

fn unify_or_backtrack(m: &mut Machine, a: Cell, b: Cell) -> Status {
    let pre = m.heap.trail_mark();
    match unify(&mut m.heap, a, b) {
        Some(steps) => {
            m.stats.unify_steps += steps as u64;
            m.charge(steps as u64 * m.costs.unify_step);
            succeed(m)
        }
        None => {
            m.heap.undo_to(pre);
            m.backtrack()
        }
    }
}
