//! Integer arithmetic evaluation for `is/2` and the comparison builtins.

use ace_logic::sym::wk;
use ace_logic::term::{view, TermView};
use ace_logic::{Cell, Heap, Sym};

/// Arithmetic evaluation errors (surfaced as machine errors — an
/// instantiation fault in a benchmark is a bug, not a failure branch).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArithError {
    Unbound,
    NotEvaluable(String),
    DivideByZero,
    Overflow,
}

impl std::fmt::Display for ArithError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArithError::Unbound => write!(f, "arguments insufficiently instantiated"),
            ArithError::NotEvaluable(t) => write!(f, "not evaluable: {t}"),
            ArithError::DivideByZero => write!(f, "division by zero"),
            ArithError::Overflow => write!(f, "integer overflow"),
        }
    }
}

/// Evaluate an arithmetic expression term to an integer. Returns the value
/// and the number of operator applications (cost metric).
pub fn eval(heap: &Heap, t: Cell) -> Result<(i64, usize), ArithError> {
    let mut ops = 0usize;
    let v = eval_inner(heap, t, &mut ops, 0)?;
    Ok((v, ops))
}

fn eval_inner(heap: &Heap, t: Cell, ops: &mut usize, depth: usize) -> Result<i64, ArithError> {
    if depth > 10_000 {
        return Err(ArithError::NotEvaluable("expression too deep".into()));
    }
    match view(heap, t) {
        TermView::Int(i) => Ok(i),
        TermView::Var(_) => Err(ArithError::Unbound),
        TermView::Atom(s) => Err(ArithError::NotEvaluable(s.name())),
        TermView::Struct(f, n, hdr) => {
            *ops += 1;
            let w = wk();
            match (f, n) {
                (s, 1) if s == w.minus => {
                    let a = eval_inner(heap, heap.str_arg(hdr, 0), ops, depth + 1)?;
                    a.checked_neg().ok_or(ArithError::Overflow)
                }
                (s, 1) if s == w.plus => eval_inner(heap, heap.str_arg(hdr, 0), ops, depth + 1),
                (s, 1) if s == w.abs => {
                    let a = eval_inner(heap, heap.str_arg(hdr, 0), ops, depth + 1)?;
                    a.checked_abs().ok_or(ArithError::Overflow)
                }
                (_, 2) => {
                    let a = eval_inner(heap, heap.str_arg(hdr, 0), ops, depth + 1)?;
                    let b = eval_inner(heap, heap.str_arg(hdr, 1), ops, depth + 1)?;
                    binop(f, a, b)
                }
                _ => Err(ArithError::NotEvaluable(format!("{}/{}", f.name(), n))),
            }
        }
        other => Err(ArithError::NotEvaluable(format!("{other:?}"))),
    }
}

fn binop(f: Sym, a: i64, b: i64) -> Result<i64, ArithError> {
    let w = wk();
    if f == w.plus {
        a.checked_add(b).ok_or(ArithError::Overflow)
    } else if f == w.minus {
        a.checked_sub(b).ok_or(ArithError::Overflow)
    } else if f == w.star {
        a.checked_mul(b).ok_or(ArithError::Overflow)
    } else if f == w.slash || f == w.int_div {
        if b == 0 {
            Err(ArithError::DivideByZero)
        } else {
            a.checked_div(b).ok_or(ArithError::Overflow)
        }
    } else if f == w.mod_ {
        if b == 0 {
            Err(ArithError::DivideByZero)
        } else {
            Ok(a.rem_euclid(b))
        }
    } else if f == w.rem {
        if b == 0 {
            Err(ArithError::DivideByZero)
        } else {
            Ok(a % b)
        }
    } else if f == w.min {
        Ok(a.min(b))
    } else if f == w.max {
        Ok(a.max(b))
    } else {
        match f.name().as_str() {
            ">>" => Ok(a >> (b & 63)),
            "<<" => a.checked_shl((b & 63) as u32).ok_or(ArithError::Overflow),
            "**" | "^" => {
                let e = u32::try_from(b).map_err(|_| ArithError::Overflow)?;
                a.checked_pow(e).ok_or(ArithError::Overflow)
            }
            other => Err(ArithError::NotEvaluable(format!("{other}/2"))),
        }
    }
}

/// Apply a comparison operator to two evaluated integers.
pub(crate) fn cmp_apply(op: Sym, a: i64, b: i64) -> Option<bool> {
    let w = wk();
    Some(if op == w.arith_eq {
        a == b
    } else if op == w.arith_ne {
        a != b
    } else if op == w.lt {
        a < b
    } else if op == w.gt {
        a > b
    } else if op == w.le {
        a <= b
    } else if op == w.ge {
        a >= b
    } else {
        return None;
    })
}

/// Evaluate both sides of an arithmetic comparison and apply it.
pub fn compare(heap: &Heap, op: Sym, lhs: Cell, rhs: Cell) -> Result<(bool, usize), ArithError> {
    let (a, o1) = eval(heap, lhs)?;
    let (b, o2) = eval(heap, rhs)?;
    match cmp_apply(op, a, b) {
        Some(r) => Ok((r, o1 + o2 + 1)),
        None => Err(ArithError::NotEvaluable(op.name())),
    }
}

/// Evaluate an expression held in a compiled body template without
/// materializing it: template-internal structure is walked directly,
/// slot-reference leaves read the registers captured by the head code
/// (dereferencing any heap term they hold). Returns `None` — "bail to the
/// generic path" — on anything unusual: an unset/unbound/non-numeric
/// leaf, an unknown operator, or an arithmetic fault. The generic path
/// then reproduces the interpreter's exact error or failure.
pub(crate) fn eval_template(
    cells: &[ace_logic::Cell],
    c: ace_logic::Cell,
    slots: &[ace_logic::Cell],
    heap: &Heap,
) -> Option<(i64, u64)> {
    let mut ops = 0u64;
    let v = eval_template_inner(cells, c, slots, heap, &mut ops).ok()?;
    Some((v, ops))
}

fn eval_template_inner(
    cells: &[Cell],
    c: Cell,
    slots: &[Cell],
    heap: &Heap,
    ops: &mut u64,
) -> Result<i64, ()> {
    use ace_logic::code::{SLOT_BASE, UNSET_SLOT};
    match c {
        Cell::Int(i) => Ok(i),
        Cell::Ref(a) if a.0 >= SLOT_BASE && c != UNSET_SLOT => {
            let s = *slots.get((a.0 - SLOT_BASE) as usize).ok_or(())?;
            if s == UNSET_SLOT {
                return Err(());
            }
            match heap.deref(s) {
                Cell::Int(i) => Ok(i),
                Cell::Str(_) => {
                    // A variable bound to a compound expression: fall back
                    // to the heap-walking evaluator for this subtree.
                    let (v, o) = eval(heap, s).map_err(|_| ())?;
                    *ops += o as u64;
                    Ok(v)
                }
                _ => Err(()),
            }
        }
        Cell::Str(h) => {
            let Cell::Functor(f, n) = cells[h.0 as usize] else {
                return Err(());
            };
            *ops += 1;
            let w = wk();
            let arg = |i: u32| cells[(h.0 + 1 + i) as usize];
            match n {
                1 if f == w.minus => eval_template_inner(cells, arg(0), slots, heap, ops)?
                    .checked_neg()
                    .ok_or(()),
                1 if f == w.plus => eval_template_inner(cells, arg(0), slots, heap, ops),
                1 if f == w.abs => eval_template_inner(cells, arg(0), slots, heap, ops)?
                    .checked_abs()
                    .ok_or(()),
                2 => {
                    let a = eval_template_inner(cells, arg(0), slots, heap, ops)?;
                    let b = eval_template_inner(cells, arg(1), slots, heap, ops)?;
                    binop(f, a, b).map_err(|_| ())
                }
                _ => Err(()),
            }
        }
        // Template self-references (single-occurrence variables), atoms,
        // lists: not arithmetic.
        _ => Err(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ace_logic::read::parse_term;

    fn ev(src: &str) -> Result<i64, ArithError> {
        let mut h = Heap::new();
        let (t, _) = parse_term(&mut h, src).unwrap();
        eval(&h, t).map(|(v, _)| v)
    }

    #[test]
    fn basic_ops() {
        assert_eq!(ev("1+2*3").unwrap(), 7);
        assert_eq!(ev("10-4").unwrap(), 6);
        assert_eq!(ev("7//2").unwrap(), 3);
        assert_eq!(ev("7 mod 3").unwrap(), 1);
        assert_eq!(ev("-5").unwrap(), -5);
        assert_eq!(ev("abs(-5)").unwrap(), 5);
        assert_eq!(ev("min(2,9)").unwrap(), 2);
        assert_eq!(ev("max(2,9)").unwrap(), 9);
        assert_eq!(ev("2^10").unwrap(), 1024);
    }

    #[test]
    fn mod_is_euclidean() {
        assert_eq!(ev("-7 mod 3").unwrap(), 2);
        assert_eq!(ev("-7 rem 3").unwrap(), -1);
    }

    #[test]
    fn errors() {
        assert_eq!(ev("X"), Err(ArithError::Unbound));
        assert_eq!(ev("1//0"), Err(ArithError::DivideByZero));
        assert!(matches!(ev("foo"), Err(ArithError::NotEvaluable(_))));
        assert!(matches!(ev("f(1)"), Err(ArithError::NotEvaluable(_))));
    }

    #[test]
    fn overflow_detected() {
        let mut h = Heap::new();
        let big = h.new_struct(ace_logic::sym("*"), &[Cell::Int(i64::MAX), Cell::Int(2)]);
        assert_eq!(eval(&h, big), Err(ArithError::Overflow));
    }

    #[test]
    fn comparisons() {
        let mut h = Heap::new();
        let (t, _) = parse_term(&mut h, "1+1 < 3").unwrap();
        let TermView::Struct(op, 2, hdr) = view(&h, t) else {
            unreachable!()
        };
        let (r, _) = compare(&h, op, h.str_arg(hdr, 0), h.str_arg(hdr, 1)).unwrap();
        assert!(r);
    }

    #[test]
    fn op_count_reported() {
        let mut h = Heap::new();
        let (t, _) = parse_term(&mut h, "1+2*3-4").unwrap();
        let (_, ops) = eval(&h, t).unwrap();
        assert_eq!(ops, 3);
    }
}
