//! # ace-machine — the sequential nondeterministic solver machine
//!
//! A steppable, resumable interpreter for the logic programs represented by
//! `ace-logic`. One [`Machine`] is one *computing agent's* view of a
//! (sub)computation: a goal continuation, a control stack of choice points
//! / parcall frames / markers, a heap and a trail.
//!
//! Design points that matter for the paper reproduction:
//!
//! * **Steppable**: [`Machine::run`] executes at most a quantum of virtual
//!   cost and returns a [`Status`]. Parallel engines drive many machines
//!   cooperatively (virtual-time simulation) or from real threads; nothing
//!   in here blocks.
//! * **The control stack is real.** Choice points, parcall frames, and
//!   input/end markers are actual frames ([`frames`]) pushed, traversed and
//!   popped — so the cost of allocating and walking them (what the paper's
//!   optimizations eliminate) is charged where it occurs.
//! * **Resumable nondeterminism**: after a [`Status::Solution`], calling
//!   [`Machine::backtrack`] resumes the search; a machine is a solution
//!   generator, which is exactly what the and-parallel engine keeps per
//!   nondeterministic slot for outside backtracking.
//! * **Runtime determinacy is observable**:
//!   [`Machine::is_deterministic_above`] answers "did any choice point
//!   survive since this control height?" — the trigger condition for the
//!   shallow-parallelism and last-parallel-call optimizations.

pub mod arith;
pub mod builtins;
pub mod cont;
pub mod frames;
#[allow(clippy::module_inception)]
pub mod machine;
pub mod solve;

pub use cont::{Cont, ContNode};
pub use frames::{Alts, ChoicePoint, CtrlFrame, Marker, MarkerKind, ParcallFrame};
pub use machine::{Machine, Status};
pub use solve::{Solution, Solver};
