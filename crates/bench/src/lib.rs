//! # ace-bench — the experiment harness
//!
//! Regenerates **every table and figure** of the paper's evaluation:
//!
//! | experiment | paper content | toggled optimization |
//! |---|---|---|
//! | `table1` | LPCO, forward execution | LPCO |
//! | `table2` | LPCO, backward execution | LPCO |
//! | `fig5`   | speedup curves, backward execution | LPCO |
//! | `table3` | LAO on or-parallel search | LAO |
//! | `table4` | shallow parallelism | SPO |
//! | `fig8`   | execution-time curves | SPO |
//! | `table5` | processor determinacy | PDO |
//! | `overhead` | §2.3 parallel overhead vs sequential | all |
//!
//! Every measurement is a deterministic virtual-time run (see
//! `ace-runtime`); "time" columns are cost units, reported exactly like the
//! paper's tables: `unoptimized/optimized (improvement%)` per worker count.

pub mod experiments;
pub mod json;
pub mod render;
pub mod runner;

pub use experiments::{experiments, Experiment, ExperimentKind};
pub use render::{render_csv, render_table};
pub use runner::{run_experiment, CellResult, ExperimentResult};
