//! Minimal JSON emission for machine-readable bench artifacts.
//!
//! The workspace is hermetic (no serde), so the `BENCH_*.json` perf
//! trajectory files are built with this tiny value type instead. It only
//! needs to *write* JSON — there is no parser — and it keeps object keys
//! in insertion order so diffs between CI runs stay stable.

use std::fmt::Write as _;

/// A JSON value. Construct with the `From` impls and [`Json::obj`] /
/// [`Json::arr`], render with [`Json::render`].
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// All numbers are f64; integers ≤ 2^53 render without a fraction.
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Insertion-ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl From<bool> for Json {
    fn from(b: bool) -> Self {
        Json::Bool(b)
    }
}
impl From<f64> for Json {
    fn from(n: f64) -> Self {
        Json::Num(n)
    }
}
impl From<u64> for Json {
    fn from(n: u64) -> Self {
        Json::Num(n as f64)
    }
}
impl From<usize> for Json {
    fn from(n: usize) -> Self {
        Json::Num(n as f64)
    }
}
impl From<&str> for Json {
    fn from(s: &str) -> Self {
        Json::Str(s.to_owned())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Self {
        Json::Str(s)
    }
}
impl<T: Into<Json>> From<Option<T>> for Json {
    fn from(o: Option<T>) -> Self {
        o.map_or(Json::Null, Into::into)
    }
}
impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Self {
        Json::Arr(v.into_iter().map(Into::into).collect())
    }
}

impl Json {
    /// Build an object from `(key, value)` pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Build an array.
    pub fn arr(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Arr(items.into_iter().collect())
    }

    /// Pretty-print with two-space indentation and a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(out, *n),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, indent + 1);
                    item.write(out, indent + 1);
                }
                newline(out, indent);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, indent + 1);
                    write_str(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                newline(out, indent);
                out.push('}');
            }
        }
    }
}

fn newline(out: &mut String, indent: usize) {
    out.push('\n');
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_num(out: &mut String, n: f64) {
    if !n.is_finite() {
        // JSON has no NaN/Infinity; null is the conventional stand-in.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9.0e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars() {
        assert_eq!(Json::Null.render(), "null\n");
        assert_eq!(Json::from(true).render(), "true\n");
        assert_eq!(Json::from(42u64).render(), "42\n");
        assert_eq!(Json::from(2.5).render(), "2.5\n");
        assert_eq!(Json::from(f64::NAN).render(), "null\n");
    }

    #[test]
    fn string_escapes() {
        assert_eq!(Json::from("a\"b\\c\nd").render(), "\"a\\\"b\\\\c\\nd\"\n");
    }

    #[test]
    fn nested_structure_renders() {
        let v = Json::obj([
            ("name", "or_scaling".into()),
            ("workers", vec![1usize, 2, 4].into()),
            ("runs", Json::arr([Json::obj([("speedup", 1.75.into())])])),
        ]);
        let r = v.render();
        assert!(r.contains("\"name\": \"or_scaling\""));
        assert!(r.contains("1,\n    2,\n    4"));
        assert!(r.contains("\"speedup\": 1.75"));
        assert!(r.ends_with("}\n"));
    }
}
