//! `server_load` — serving-layer bench: open-loop mixed-query load over one
//! shared fleet, JSON output.
//!
//! Drives the [`ace_server::QueryServer`] with two tiers of traffic:
//! high-priority short enumeration queries submitted at a fixed open-loop
//! rate, and a best-effort low-priority flood of heavier queries that
//! saturates the admission controller. Measures per-session *first-answer*
//! latency (the whole point of streaming) against the run-to-completion
//! time the same sessions would need without streaming, plus throughput
//! and rejection counts.
//!
//! Phase B runs with a live metrics registry attached; its Prometheus
//! scrape is the CI-uploaded artifact (`--metrics-out FILE`) and the
//! server-side first-answer histogram is cross-checked against the
//! client-side sample.
//!
//! Exit-2 guards:
//! - streamed first-answer p99 must be at least 3x lower than the
//!   run-to-completion p99 of the same high-priority sessions;
//! - the high-priority first-answer p99 must not collapse under the
//!   low-priority flood (priority dispatch must shield it);
//! - the registry's server-side first-answer p99 must agree with the
//!   client-side sampled p99 within noise, and its admission counters
//!   must agree with the server's own stats exactly.
//!
//! ```text
//! server_load                    # full sizes, writes BENCH_server_load.json
//! server_load --smoke            # reduced sizes (CI smoke job)
//! server_load --json --out FILE  # explicit output path
//! server_load --metrics-out FILE # + phase-B Prometheus text dump
//! ```

use std::fs;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use ace_bench::json::Json;
use ace_core::{Ace, Mode};
use ace_runtime::{EngineConfig, MetricsRegistry, OptFlags};
use ace_server::{Priority, QueryRequest, QueryServer, Serve, ServerConfig};

const FLEET: usize = 8;

fn program(
    work_items: usize,
    work_len: usize,
    work_reps: usize,
    flood_len: usize,
    flood_reps: usize,
) -> String {
    let list = |n: usize| (1..=n).map(|i| i.to_string()).collect::<Vec<_>>().join(",");
    format!(
        r#"
        append([], L, L).
        append([H|T], L, [H|R]) :- append(T, L, R).
        nrev([], []).
        nrev([H|T], R) :- nrev(T, RT), append(RT, [H], R).
        member(X, [X|_]).
        member(X, [_|T]) :- member(X, T).
        rep(0).
        rep(N) :- N > 0, nrev([{work}], _), N1 is N - 1, rep(N1).
        work(X) :- member(X, [{items}]), rep({reps}).
        frep(0).
        frep(N) :- N > 0, nrev([{flood}], _), N1 is N - 1, frep(N1).
        flood(R) :- frep({freps}), nrev([{flood}], R).
        "#,
        items = list(work_items),
        work = list(work_len),
        reps = work_reps,
        flood = list(flood_len),
        freps = flood_reps,
    )
}

fn engine_cfg() -> EngineConfig {
    EngineConfig::default()
        .with_workers(1)
        .with_opts(OptFlags::all())
        .all_solutions()
}

/// Latencies of one high-priority session, in microseconds.
struct Sample {
    first_answer_us: u64,
    completion_us: u64,
}

/// Submit `n` high-priority `work(X)` sessions at a fixed open-loop rate
/// and collect first-answer / completion latencies on a thread per
/// session (the "client").
fn drive_high_priority(server: &QueryServer, n: usize, spacing: Duration) -> Vec<Sample> {
    let mut collectors = Vec::new();
    for _ in 0..n {
        let t0 = Instant::now();
        // Backpressure rather than rejection for the latency-sensitive
        // tier: any wait for an admission slot counts against the
        // measured first-answer latency (t0 is taken before submission).
        let handle = server
            .submit_blocking(
                QueryRequest::new(Mode::Sequential, "work(X)", engine_cfg())
                    .with_priority(Priority::High),
            )
            .expect("high-priority session admitted");
        collectors.push(std::thread::spawn(move || {
            let first = handle.next_answer().map(|_| t0.elapsed());
            let outcome = handle.wait();
            let done = t0.elapsed();
            (first, done, outcome.end)
        }));
        std::thread::sleep(spacing);
    }
    collectors
        .into_iter()
        .map(|c| {
            let (first, done, end) = c.join().expect("collector thread");
            assert_eq!(
                end,
                ace_server::SessionEnd::Completed,
                "high-priority session must complete"
            );
            Sample {
                first_answer_us: first.expect("streamed first answer").as_micros() as u64,
                completion_us: done.as_micros() as u64,
            }
        })
        .collect()
}

fn p99(mut us: Vec<u64>) -> u64 {
    us.sort_unstable();
    us[(us.len() - 1).min(us.len() * 99 / 100)]
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    // --json is the only output mode; accepted for CLI symmetry.
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("BENCH_server_load.json"));
    let metrics_out = args
        .iter()
        .position(|a| a == "--metrics-out")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from);

    // Per-answer work (`rep`) is deliberately a small fraction of the
    // per-session total (`work_items` answers): the completion/first-answer
    // spread is what streaming buys, and CPU contention from the flood
    // scales both sides of that ratio equally.
    let (high_n, flood_n, work_items, work_len, work_reps, flood_len, flood_reps): (
        usize,
        usize,
        usize,
        usize,
        usize,
        usize,
        usize,
    ) = if smoke {
        (20, 100, 40, 20, 8, 24, 12)
    } else {
        (32, 200, 40, 20, 8, 24, 12)
    };
    // Open-loop spacing chosen so offered high-priority load stays well
    // under fleet capacity even on a single-core host: queueing must not
    // drown the work itself.
    let spacing = Duration::from_millis(if smoke { 80 } else { 100 });

    let ace = Ace::load(&program(
        work_items, work_len, work_reps, flood_len, flood_reps,
    ))
    .expect("load program");
    let server_cfg = ServerConfig::default()
        .with_fleet(FLEET)
        .with_max_in_flight(64);

    // Phase A — high-priority traffic alone: the undisturbed baseline.
    eprintln!("server_load: phase A ({high_n} high-priority sessions, no flood) ...");
    let server = ace.serve(server_cfg.clone());
    let solo = drive_high_priority(&server, high_n, spacing);
    server.shutdown();

    // Phase B — the same high-priority traffic under a low-priority
    // flood submitted open-loop as fast as the admission controller
    // accepts (rejections are part of the measurement).
    eprintln!("server_load: phase B ({high_n} high-priority + {flood_n} flood) ...");
    // The live registry rides along on the measured phase only: its scrape
    // is the artifact CI uploads, and its server-side latency histograms
    // are cross-checked against the client-side samples below.
    let registry = MetricsRegistry::shared();
    let server = ace.serve(server_cfg.with_metrics(registry.clone()));
    let mut flood_handles = Vec::new();
    let mut flood_rejected = 0u64;
    let t_flood = Instant::now();
    for _ in 0..flood_n {
        match server.submit(
            QueryRequest::new(Mode::Sequential, "flood(R)", engine_cfg())
                .with_priority(Priority::Low),
        ) {
            Ok(h) => flood_handles.push(h),
            Err(_) => flood_rejected += 1,
        }
    }
    let loaded = drive_high_priority(&server, high_n, spacing);
    for h in &flood_handles {
        h.wait();
    }
    let flood_wall = t_flood.elapsed();
    // Scrape before shutdown, the way a live Prometheus poll would see it.
    let snap = server.metrics();
    let stats = server.shutdown();

    let p99_first_solo = p99(solo.iter().map(|s| s.first_answer_us).collect());
    let p99_first_loaded = p99(loaded.iter().map(|s| s.first_answer_us).collect());
    let p99_completion_loaded = p99(loaded.iter().map(|s| s.completion_us).collect());
    let stream_speedup = p99_completion_loaded as f64 / p99_first_loaded.max(1) as f64;
    let throughput = stats.completed as f64 / flood_wall.as_secs_f64();

    // The server-side view of the same phase-B traffic, from the registry.
    let metrics_p99_first_high = snap
        .histogram(
            "ace_server_first_answer_latency_us",
            &[("priority", "high")],
        )
        .map(|h| h.quantile(0.99))
        .unwrap_or(0);
    let metrics_admitted = snap.counter_total("ace_server_sessions_admitted_total");
    let metrics_rejected = snap.counter_total("ace_server_sessions_rejected_total");

    eprintln!(
        "server_load: first-answer p99 solo={p99_first_solo}us loaded={p99_first_loaded}us \
         completion p99={p99_completion_loaded}us (stream speedup {stream_speedup:.1}x), \
         {throughput:.0} sessions/s, {flood_rejected} rejected"
    );

    let doc = Json::obj([
        ("bench", "server_load".into()),
        ("smoke", smoke.into()),
        ("fleet", FLEET.into()),
        ("high_sessions", high_n.into()),
        ("flood_sessions", flood_n.into()),
        ("flood_rejected", flood_rejected.into()),
        ("admitted", stats.admitted.into()),
        ("completed", stats.completed.into()),
        ("answers_streamed", stats.answers_streamed.into()),
        ("throughput_sessions_per_sec", throughput.into()),
        ("p99_first_answer_solo_us", p99_first_solo.into()),
        ("p99_first_answer_loaded_us", p99_first_loaded.into()),
        ("p99_completion_loaded_us", p99_completion_loaded.into()),
        ("stream_speedup_p99", stream_speedup.into()),
        (
            "metrics_p99_first_answer_high_us",
            metrics_p99_first_high.into(),
        ),
        ("metrics_admitted_total", metrics_admitted.into()),
        ("metrics_rejected_total", metrics_rejected.into()),
    ]);
    fs::write(&out, doc.render()).expect("write bench json");
    eprintln!("wrote {}", out.display());
    if let Some(path) = &metrics_out {
        fs::write(path, snap.render_prometheus()).expect("write metrics dump");
        eprintln!("wrote {}", path.display());
    }

    // Guard 1: streaming must beat run-to-completion on first-answer p99
    // by at least 3x under mixed load.
    if stream_speedup < 3.0 {
        eprintln!(
            "server_load FAILED: first-answer p99 ({p99_first_loaded}us) is not >=3x \
             lower than run-to-completion p99 ({p99_completion_loaded}us)"
        );
        std::process::exit(2);
    }
    // Guard 2: priority dispatch must shield high-priority first-answer
    // latency from the flood. A priority inversion would queue the session
    // behind the whole flood (seconds); plain CPU contention from
    // already-dispatched flood sessions only multiplies latency by the
    // fleet width. The bound is generous (16x or 100ms of absolute slack,
    // against a flood backlog worth seconds) to stay robust on single-core
    // CI hosts where the p99 of a small sample is its maximum.
    let bound = (p99_first_solo * 16).max(p99_first_solo + 100_000);
    if p99_first_loaded > bound {
        eprintln!(
            "server_load FAILED: high-priority first-answer p99 regressed under flood: \
             {p99_first_loaded}us vs solo {p99_first_solo}us (bound {bound}us)"
        );
        std::process::exit(2);
    }
    // Guard 3: the registry must agree with what the bench measured.
    // Counters exactly — every admission and rejection increments exactly
    // one labeled series. The latency histogram within noise: server-side
    // timing starts at submission like the client's t0 but is observed at
    // the sink rather than the client thread, and the log-bucket layout
    // rounds up to a bucket bound — a 2x band plus 20ms absolute slack
    // covers both without masking a broken histogram (a real bug is off by
    // orders of magnitude or zero).
    if metrics_admitted != stats.admitted || metrics_rejected != stats.rejected {
        eprintln!(
            "server_load FAILED: metrics admission counters disagree with server \
             stats: admitted {metrics_admitted} vs {}, rejected {metrics_rejected} vs {}",
            stats.admitted, stats.rejected
        );
        std::process::exit(2);
    }
    let slack = 20_000u64;
    let agree = metrics_p99_first_high <= p99_first_loaded * 2 + slack
        && p99_first_loaded <= metrics_p99_first_high * 2 + slack;
    if !agree {
        eprintln!(
            "server_load FAILED: metrics first-answer p99 ({metrics_p99_first_high}us) \
             disagrees with the client-side sample ({p99_first_loaded}us)"
        );
        std::process::exit(2);
    }
}
