//! `or_scaling` — or-parallel scaling + steal-cost bench, JSON output.
//!
//! Runs the or-parallel corpus at 1/2/4/8 workers under the pool
//! scheduler and records virtual-time speedups, then measures steal cost
//! per claimed alternative (pool vs traversal oracle) as the `member/2`
//! chain deepens. Writes the machine-readable perf-trajectory artifact
//! that CI uploads on every run.
//!
//! ```text
//! or_scaling                       # full sizes, writes BENCH_or_scaling.json
//! or_scaling --smoke               # reduced sizes (CI smoke job)
//! or_scaling --json --out FILE     # explicit output path
//! or_scaling --trace FILE          # + Perfetto trace of a 4-worker run
//! or_scaling --topology            # 64-512 worker grid, BENCH_or_topology.json
//! or_scaling --topology-smoke      # reduced grid + CI guards (exit 2)
//! or_scaling --profile             # cost profile of the worst grid cell
//! or_scaling --profile-smoke       # reduced size, same guards (exit 2)
//! ```

use std::fs;
use std::path::PathBuf;

use ace_bench::json::Json;
use ace_core::{Ace, Mode};
use ace_runtime::{
    EngineConfig, FaultKind, FaultPlan, MetricsRegistry, OptFlags, OrScheduler, Profile, Topology,
    TraceConfig,
};

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn cfg(b: &ace_programs::Benchmark, workers: usize, sched: OrScheduler) -> EngineConfig {
    let mut c = EngineConfig::default()
        .with_workers(workers)
        .with_opts(OptFlags::all())
        .with_or_scheduler(sched);
    c.max_solutions = if b.all_solutions { None } else { Some(1) };
    c
}

/// Speedup rows for one benchmark across `WORKER_COUNTS`.
fn scaling_entry(name: &str, smoke: bool) -> Result<Json, String> {
    let b = ace_programs::benchmark(name).ok_or_else(|| format!("unknown benchmark {name}"))?;
    let size = if smoke { b.test_size } else { b.bench_size };
    let ace = Ace::load(&(b.program)(size))?;
    let query = (b.query)(size);

    let mut runs = Vec::new();
    let mut base = None;
    let mut solutions = None;
    for w in WORKER_COUNTS {
        let r = ace
            .run(b.mode, &query, &cfg(&b, w, OrScheduler::Pool))
            .map_err(|e| format!("{name} w={w}: {e}"))?;
        let one = *base.get_or_insert(r.virtual_time);
        match solutions {
            None => solutions = Some(r.solutions.len()),
            Some(n) => {
                if n != r.solutions.len() {
                    return Err(format!(
                        "{name} w={w}: solution count changed ({n} -> {})",
                        r.solutions.len()
                    ));
                }
            }
        }
        runs.push(Json::obj([
            ("workers", w.into()),
            ("virtual_time", r.virtual_time.into()),
            ("speedup", r.speedup_from(one).into()),
            ("pool_pushes", r.stats.pool_pushes.into()),
            ("pool_pops", r.stats.pool_pops.into()),
            ("machines_recycled", r.stats.machines_recycled.into()),
            ("steal_cost_per_claim", r.steal_cost_per_claim().into()),
        ]));
    }
    Ok(Json::obj([
        ("name", name.into()),
        ("size", size.into()),
        ("solutions", solutions.unwrap_or(0).into()),
        ("runs", Json::Arr(runs)),
    ]))
}

/// Pool-vs-traversal steal cost on a deepening member chain, LAO off so
/// the public tree really grows (this is the O(1)-vs-O(depth) series).
fn steal_cost_entry(depth: usize) -> Result<Json, String> {
    let b = ace_programs::benchmark("members").expect("members benchmark exists");
    let ace = Ace::load(&(b.program)(depth))?;
    let query = (b.query)(depth);
    let mut row = vec![("depth", Json::from(depth))];
    for (key, sched) in [
        ("pool", OrScheduler::Pool),
        ("traversal", OrScheduler::Traversal),
    ] {
        let mut c = cfg(&b, 4, sched);
        c.opts = OptFlags::none();
        let r = ace
            .run(Mode::OrParallel, &query, &c)
            .map_err(|e| format!("members depth={depth} {key}: {e}"))?;
        row.push((key, r.steal_cost_per_claim().into()));
    }
    Ok(Json::Obj(
        row.into_iter().map(|(k, v)| (k.to_owned(), v)).collect(),
    ))
}

/// Claim-locality series: the procrastinated-capture payoff, measured on
/// a K-way `alt/1` choice whose continuation carries a size-S list (so
/// the closure a claimant would install grows with S). Three rows per S:
///
/// * `local` — one worker; every alternative is drained by its owner via
///   direct backtracking, so no closure is ever frozen.
/// * `local_faulted` — four workers but every steal attempt fails; nodes
///   are published (and deferred), then fully drained by their owners.
/// * `remote` — four workers stealing normally; materialization pays one
///   freeze per demanded node, amortized over all remote claims, and the
///   per-claim thaw cost is flat in S.
///
/// The two all-local rows double as the CI regression guard for the
/// defer path: they hard-fail (exit 2 via main) unless publish-side
/// copying is exactly zero, and every row must reproduce the traversal
/// oracle's answer multiset.
fn claim_locality_entry(list_len: usize, smoke: bool) -> Result<Json, String> {
    let k = if smoke { 8 } else { 12 };
    let mut program = String::new();
    for i in 1..=k {
        program.push_str(&format!("alt({i}).\n"));
    }
    program.push_str("pick(L, X) :- alt(X), walk(L).\nwalk([]).\nwalk([_|T]) :- walk(T).\n");
    let list: Vec<String> = (1..=list_len).map(|i| i.to_string()).collect();
    let query = format!("pick([{}], X)", list.join(","));
    let ace = Ace::load(&program)?;

    let locality_cfg = |workers: usize, sched: OrScheduler| {
        EngineConfig::default()
            .with_workers(workers)
            .with_opts(OptFlags::all())
            .with_or_scheduler(sched)
            .all_solutions()
    };
    let sort = |mut v: Vec<String>| {
        v.sort();
        v
    };

    let oracle = ace
        .run(
            Mode::OrParallel,
            &query,
            &locality_cfg(4, OrScheduler::Traversal),
        )
        .map_err(|e| format!("claim-locality oracle S={list_len}: {e}"))?;
    let expected = sort(oracle.solutions);
    if expected.len() != k {
        return Err(format!(
            "claim-locality oracle S={list_len}: expected {k} answers, got {}",
            expected.len()
        ));
    }

    // Saturate every worker with queued StealFail events (each armed at
    // op 0, consumed one per attempt): no remote claim ever reaches a
    // node, so every deferred closure must be elided by its owner.
    let mut starved = FaultPlan::new(0);
    for w in 0..4 {
        for _ in 0..512 {
            starved = starved.with(w, 0, FaultKind::StealFail);
        }
    }

    let mut rows = Vec::new();
    for (mode, workers, plan) in [
        ("local", 1usize, None),
        ("local_faulted", 4, Some(starved)),
        ("remote", 4, None),
    ] {
        let mut c = locality_cfg(workers, OrScheduler::Pool);
        if let Some(p) = plan {
            c = c.with_fault_plan(p);
        }
        let r = ace
            .run(Mode::OrParallel, &query, &c)
            .map_err(|e| format!("claim-locality {mode} S={list_len}: {e}"))?;
        if sort(r.solutions.clone()) != expected {
            return Err(format!(
                "claim-locality {mode} S={list_len}: answers diverge from the traversal oracle"
            ));
        }
        if mode != "remote"
            && (r.stats.cells_copied_publish != 0 || r.stats.closures_materialized != 0)
        {
            return Err(format!(
                "claim-locality {mode} S={list_len}: all-local claims must elide capture \
                 entirely (cells_copied_publish={}, closures_materialized={})",
                r.stats.cells_copied_publish, r.stats.closures_materialized
            ));
        }
        rows.push(Json::obj([
            ("mode", mode.into()),
            ("workers", workers.into()),
            ("virtual_time", r.virtual_time.into()),
            ("nodes_published", r.stats.nodes_published.into()),
            (
                "closures_materialized",
                r.stats.closures_materialized.into(),
            ),
            ("closures_elided", r.stats.closures_elided.into()),
            ("cells_copied_publish", r.stats.cells_copied_publish.into()),
            ("cells_copied_claim", r.stats.cells_copied_claim.into()),
            ("alternatives_claimed", r.stats.alternatives_claimed.into()),
        ]));
    }
    Ok(Json::obj([
        ("closure_list_len", list_len.into()),
        ("alternatives", k.into()),
        ("runs", Json::Arr(rows)),
    ]))
}

/// Traced 4-worker pool run over the first corpus benchmark; writes the
/// Chrome `trace_event` JSON for Perfetto (the CI-uploaded artifact).
fn write_trace(name: &str, smoke: bool, path: &PathBuf) -> Result<(), String> {
    let b = ace_programs::benchmark(name).ok_or_else(|| format!("unknown benchmark {name}"))?;
    let size = if smoke { b.test_size } else { b.bench_size };
    let ace = Ace::load(&(b.program)(size))?;
    let mut c = cfg(&b, 4, OrScheduler::Pool);
    c.trace = TraceConfig::enabled().with_lifecycle();
    let r = ace.run(b.mode, &(b.query)(size), &c)?;
    let trace = r
        .trace
        .as_ref()
        .ok_or("tracing enabled but no trace on the report")?;
    fs::write(path, trace.to_chrome_json()).map_err(|e| e.to_string())?;
    eprintln!(
        "wrote {} ({} events, {} workers, {} dropped)",
        path.display(),
        trace.len(),
        trace.workers(),
        trace.dropped
    );
    Ok(())
}

/// One cell of the topology grid: `wide_tree` on `workers` workers under
/// `topo`, answers checked against the program's known solution count.
struct TopoCell {
    virtual_time: u64,
    speedup: f64,
    cross_fraction: f64,
    row: Json,
}

fn topology_cell(
    ace: &Ace,
    query: &str,
    expected: usize,
    workers: usize,
    topo_name: &str,
    topo: Topology,
    base: Option<u64>,
) -> Result<TopoCell, String> {
    let c = EngineConfig::default()
        .with_workers(workers)
        .with_opts(OptFlags::all())
        .with_or_scheduler(OrScheduler::Pool)
        .with_topology(topo)
        .all_solutions();
    let r = ace
        .run(Mode::OrParallel, query, &c)
        .map_err(|e| format!("topology {topo_name} w={workers}: {e}"))?;
    if r.solutions.len() != expected {
        return Err(format!(
            "topology {topo_name} w={workers}: expected {expected} answers, got {}",
            r.solutions.len()
        ));
    }
    let one = base.unwrap_or(r.virtual_time);
    let total_steals = r.stats.steals_local_domain + r.stats.steals_cross_domain;
    // Eager crosses — domain boundary crossed while the thief's own
    // domain still had visible work — are the hierarchy violation the
    // guard watches; starvation crosses (local domain empty) are the
    // scheduler doing its job.
    let cross_fraction = if total_steals == 0 {
        0.0
    } else {
        r.stats.steals_cross_eager as f64 / total_steals as f64
    };
    let speedup = r.speedup_from(one);
    let row = Json::obj([
        ("topology", topo_name.into()),
        ("workers", workers.into()),
        ("virtual_time", r.virtual_time.into()),
        ("speedup", speedup.into()),
        ("steals_local_domain", r.stats.steals_local_domain.into()),
        ("steals_cross_domain", r.stats.steals_cross_domain.into()),
        ("steals_cross_eager", r.stats.steals_cross_eager.into()),
        (
            "cross_steal_fraction",
            r.stats.cross_steal_fraction().into(),
        ),
        ("eager_cross_fraction", cross_fraction.into()),
        ("lock_contended", r.stats.lock_contended.into()),
        ("lock_wait_cost", r.stats.lock_wait_cost.into()),
        ("pool_pushes", r.stats.pool_pushes.into()),
        ("pool_pops", r.stats.pool_pops.into()),
        ("idle_probes", r.stats.idle_probes.into()),
    ]);
    Ok(TopoCell {
        virtual_time: r.virtual_time,
        speedup,
        cross_fraction,
        row,
    })
}

/// The 64-512 worker x topology grid on `wide_tree`, plus the ablations
/// that expose each high-worker cliff:
///
/// * `flat` — single domain, zero steal premiums, but locks priced at
///   the same rate as numa4 so contention is visible: the PR-2 machine's
///   structure under an honest lock model (the default `Topology::flat()`
///   charges nothing and reproduces PR 2 exactly — that equivalence is
///   pinned by BENCH_or_scaling.json, not this grid).
/// * `numa4` — 4 domains, cross-steals 4x intra cost, hierarchical
///   victim scan + per-domain answer buffers (the full scheme).
/// * `numa4_flat_scan` — same cost model, victim scan ignores domains:
///   what the grid looks like without hierarchy (ablation).
/// * `numa4_global_lock` — hierarchical scan but one engine-wide answer
///   lock: isolates the solution-collection cliff at 256 workers.
///
/// Guards (exit 2 via main, both smoke and full): on the hierarchical
/// numa4 column, speedup@64 must be at least 2x speedup@8, and eager
/// cross-domain steals (boundary crossed while the thief's own domain
/// still had visible work) at 64 workers must stay under 25% of all
/// classified steals.
fn topology_grid(smoke: bool) -> Result<Json, String> {
    let b = ace_programs::benchmark("wide_tree").expect("wide_tree benchmark exists");
    let size = if smoke { 16 } else { b.bench_size };
    let expected = size * 8;
    let ace = Ace::load(&(b.program)(size))?;
    let query = (b.query)(size);

    let scale: &[usize] = if smoke { &[64] } else { &[64, 128, 256, 512] };
    let mut rows = Vec::new();

    // Lock pricing for the grid's flat column: numa4's rate, so the flat
    // and hierarchical columns differ only in structure, not honesty.
    let priced_flat = || Topology::flat().with_contended_lock(Topology::numa(4).contended_lock);

    // 1-worker flat run anchors every speedup in the grid.
    let base = topology_cell(&ace, &query, expected, 1, "flat", priced_flat(), None)?;
    let one = base.virtual_time;
    rows.push(base.row);

    let mut guard_speedups = (None, None); // (numa4@8, numa4@64)
    let mut guard_cross = None; // numa4@64
    type TopoArm = (&'static str, fn() -> Topology);
    let topologies: [TopoArm; 3] = [
        ("flat", priced_flat),
        ("numa4", || Topology::numa(4)),
        ("numa4_flat_scan", || Topology::numa(4).flat_scan()),
    ];
    for (name, make) in topologies {
        let counts: Vec<usize> = if name == "numa4_flat_scan" {
            scale.to_vec() // ablation only needs the high-worker half
        } else {
            [8].iter().chain(scale).copied().collect()
        };
        for w in counts {
            eprintln!("topology {name} at {w} workers ...");
            let cell = topology_cell(&ace, &query, expected, w, name, make(), Some(one))?;
            if name == "numa4" && w == 8 {
                guard_speedups.0 = Some(cell.speedup);
            }
            if name == "numa4" && w == 64 {
                guard_speedups.1 = Some(cell.speedup);
                guard_cross = Some(cell.cross_fraction);
            }
            rows.push(cell.row);
        }
    }
    if !smoke {
        eprintln!("topology numa4_global_lock at 256 workers ...");
        let cell = topology_cell(
            &ace,
            &query,
            expected,
            256,
            "numa4_global_lock",
            Topology::numa(4).global_answer_lock(),
            Some(one),
        )?;
        rows.push(cell.row);
    }

    let (s8, s64) = (
        guard_speedups.0.expect("numa4@8 ran"),
        guard_speedups.1.expect("numa4@64 ran"),
    );
    if s64 < 2.0 * s8 {
        return Err(format!(
            "topology guard: speedup@64 ({s64:.2}) is under 2x speedup@8 ({s8:.2}) \
             on wide_tree/numa4 — the hierarchical pool stopped scaling"
        ));
    }
    let cross = guard_cross.expect("numa4@64 ran");
    if cross >= 0.25 {
        return Err(format!(
            "topology guard: eager cross-domain steal fraction {cross:.3} at 64 \
             workers reached 25% — thieves are crossing domains with local work \
             still visible"
        ));
    }

    Ok(Json::obj([
        ("program", "wide_tree".into()),
        ("size", size.into()),
        ("solutions", expected.into()),
        ("cells", Json::Arr(rows)),
    ]))
}

/// Traced 64-worker hierarchical run for Perfetto: the domain-steal
/// events make every cross-domain claim visible on the timeline.
fn write_topology_trace(smoke: bool, path: &PathBuf) -> Result<(), String> {
    let b = ace_programs::benchmark("wide_tree").expect("wide_tree benchmark exists");
    let size = if smoke { 16 } else { b.bench_size };
    let ace = Ace::load(&(b.program)(size))?;
    let mut c = EngineConfig::default()
        .with_workers(64)
        .with_opts(OptFlags::all())
        .with_or_scheduler(OrScheduler::Pool)
        .with_topology(Topology::numa(4))
        .all_solutions();
    c.trace = TraceConfig::enabled();
    let r = ace.run(Mode::OrParallel, &(b.query)(size), &c)?;
    let trace = r
        .trace
        .as_ref()
        .ok_or("tracing enabled but no trace on the report")?;
    fs::write(path, trace.to_chrome_json()).map_err(|e| e.to_string())?;
    eprintln!(
        "wrote {} ({} events, {} workers, {} dropped)",
        path.display(),
        trace.len(),
        trace.workers(),
        trace.dropped
    );
    Ok(())
}

/// Profiled run of the topology grid's worst cell: `wide_tree` at 256
/// workers under the global-answer-lock ablation, virtual-time trace
/// folded into a cost profile. Prints the ranked frame table, writes the
/// collapsed-stack file (`flamegraph.pl` / inferno input format), and
/// guards that the contended answer lock actually ranks among the top-5
/// frames — the profiler must be able to *name* the PR-7 cliff, not just
/// show that it exists.
fn profile_run(smoke: bool, out: &PathBuf) -> Result<(), String> {
    let b = ace_programs::benchmark("wide_tree").expect("wide_tree benchmark exists");
    let size = if smoke { 16 } else { b.bench_size };
    let ace = Ace::load(&(b.program)(size))?;
    let mut c = EngineConfig::default()
        .with_workers(256)
        .with_opts(OptFlags::all())
        .with_or_scheduler(OrScheduler::Pool)
        .with_topology(Topology::numa(4).global_answer_lock())
        .all_solutions();
    c.trace = TraceConfig::enabled();
    eprintln!("profiling wide_tree (size {size}) at 256 workers / numa4 + global answer lock ...");
    let r = ace
        .run(Mode::OrParallel, &(b.query)(size), &c)
        .map_err(|e| format!("profile run: {e}"))?;
    let trace = r
        .trace
        .as_ref()
        .ok_or("tracing enabled but no trace on the report")?;
    if trace.dropped > 0 {
        return Err(format!(
            "profile run: trace dropped {} event(s) — profile would be partial; \
             raise the ring capacity",
            trace.dropped
        ));
    }
    let profile = Profile::from_trace(trace);
    println!("{}", profile.table(10));
    fs::write(out, profile.collapsed()).map_err(|e| e.to_string())?;
    eprintln!(
        "wrote {} ({} units of virtual cost attributed)",
        out.display(),
        profile.total()
    );
    let top5 = profile.top(5);
    if !top5.iter().any(|(frame, _, _)| frame == "lock;answer") {
        return Err(format!(
            "profile guard: the global-answer-lock ablation's contended lock \
             (frame `lock;answer`, cost {}) did not rank in the top-5 frames: {:?}",
            profile.cost("lock;answer"),
            top5.iter().map(|(f, _, _)| f.as_str()).collect::<Vec<_>>()
        ));
    }
    Ok(())
}

/// Metrics bit-identity guard (smoke path): attaching a live registry to
/// a deterministic run must leave the virtual clock and every stat
/// untouched. Counter folds are checked against the report they came from.
fn metrics_identity_guard() -> Result<(), String> {
    let b = ace_programs::benchmark("queen1").expect("queen1 benchmark exists");
    let ace = Ace::load(&(b.program)(b.test_size))?;
    let query = (b.query)(b.test_size);
    let plain = ace.run(b.mode, &query, &cfg(&b, 4, OrScheduler::Pool))?;
    let registry = MetricsRegistry::shared();
    let mut c = cfg(&b, 4, OrScheduler::Pool);
    c = c.with_metrics(registry.clone());
    let live = ace.run(b.mode, &query, &c)?;
    if plain.virtual_time != live.virtual_time {
        return Err(format!(
            "metrics guard: live registry perturbed the virtual clock \
             ({} -> {})",
            plain.virtual_time, live.virtual_time
        ));
    }
    if plain.stats != live.stats {
        return Err("metrics guard: live registry perturbed the run stats".into());
    }
    let snap = registry.snapshot();
    let folded = snap.counter_value("ace_engine_virtual_time_total", &[("engine", "or")]);
    if folded != Some(live.virtual_time) {
        return Err(format!(
            "metrics guard: folded virtual time {folded:?} disagrees with the \
             report ({})",
            live.virtual_time
        ));
    }
    eprintln!(
        "metrics identity guard passed (virtual time {})",
        live.virtual_time
    );
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    // --claim-locality: run only the claim-locality series (targeted use);
    // the series always runs as part of the full/smoke sweeps too.
    let only_locality = args.iter().any(|a| a == "--claim-locality");
    // --topology / --topology-smoke: run only the worker-scaling grid and
    // write BENCH_or_topology.json (separate artifact, separate CI step).
    let topo_smoke = args.iter().any(|a| a == "--topology-smoke");
    let topology = topo_smoke || args.iter().any(|a| a == "--topology");
    // --profile / --profile-smoke: cost-profile the topology grid's worst
    // cell and write the collapsed-stack flamegraph input (separate mode).
    let profile_smoke = args.iter().any(|a| a == "--profile-smoke");
    let profile = profile_smoke || args.iter().any(|a| a == "--profile");
    // --json is the only output mode; accepted for CLI symmetry with tables.
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
        .unwrap_or_else(|| {
            PathBuf::from(if profile {
                "BENCH_or_profile.folded"
            } else if topology {
                "BENCH_or_topology.json"
            } else {
                "BENCH_or_scaling.json"
            })
        });
    let trace_out = args
        .iter()
        .position(|a| a == "--trace")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from);

    if profile {
        if let Err(e) = profile_run(profile_smoke, &out) {
            eprintln!("or_scaling FAILED: {e}");
            std::process::exit(2);
        }
        return;
    }

    if topology {
        let grid = match topology_grid(topo_smoke) {
            Ok(grid) => grid,
            Err(e) => {
                eprintln!("or_scaling FAILED: {e}");
                std::process::exit(2);
            }
        };
        let doc = Json::obj([
            ("bench", "or_topology".into()),
            ("smoke", topo_smoke.into()),
            ("scheduler", "pool".into()),
            ("grid", grid),
        ]);
        fs::write(&out, doc.render()).expect("write bench json");
        eprintln!("wrote {}", out.display());
        if let Some(path) = trace_out {
            eprintln!("tracing wide_tree at 64 workers / numa4 ...");
            if let Err(e) = write_topology_trace(topo_smoke, &path) {
                eprintln!("or_scaling FAILED: {e}");
                std::process::exit(2);
            }
        }
        return;
    }

    let corpus: &[&str] = if smoke {
        &["queen1", "members", "ancestors"]
    } else {
        &["queen1", "queen2", "puzzle", "ancestors", "members", "maps"]
    };
    let depths: &[usize] = if smoke { &[6, 10] } else { &[8, 16, 32] };
    let locality_sizes: &[usize] = if smoke { &[8, 32] } else { &[16, 64, 256] };

    let mut benchmarks = Vec::new();
    let mut steal = Vec::new();
    if !only_locality {
        if let Err(e) = metrics_identity_guard() {
            eprintln!("or_scaling FAILED: {e}");
            std::process::exit(2);
        }
        for name in corpus {
            eprintln!("scaling {name} ...");
            match scaling_entry(name, smoke) {
                Ok(entry) => benchmarks.push(entry),
                Err(e) => {
                    eprintln!("or_scaling FAILED: {e}");
                    std::process::exit(2);
                }
            }
        }
        for &d in depths {
            eprintln!("steal cost, member chain depth {d} ...");
            match steal_cost_entry(d) {
                Ok(entry) => steal.push(entry),
                Err(e) => {
                    eprintln!("or_scaling FAILED: {e}");
                    std::process::exit(2);
                }
            }
        }
    }
    let mut locality = Vec::new();
    for &s in locality_sizes {
        eprintln!("claim locality, closure list length {s} ...");
        match claim_locality_entry(s, smoke) {
            Ok(entry) => locality.push(entry),
            Err(e) => {
                eprintln!("or_scaling FAILED: {e}");
                std::process::exit(2);
            }
        }
    }

    let doc = Json::obj([
        ("bench", "or_scaling".into()),
        ("smoke", smoke.into()),
        ("scheduler", "pool".into()),
        ("workers", WORKER_COUNTS.to_vec().into()),
        ("benchmarks", Json::Arr(benchmarks)),
        ("steal_cost_by_depth", Json::Arr(steal)),
        ("claim_locality", Json::Arr(locality)),
    ]);
    fs::write(&out, doc.render()).expect("write bench json");
    eprintln!("wrote {}", out.display());

    if let Some(path) = trace_out {
        eprintln!("tracing {} at 4 workers ...", corpus[0]);
        if let Err(e) = write_trace(corpus[0], smoke, &path) {
            eprintln!("or_scaling FAILED: {e}");
            std::process::exit(2);
        }
    }
}
