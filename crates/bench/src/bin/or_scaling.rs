//! `or_scaling` — or-parallel scaling + steal-cost bench, JSON output.
//!
//! Runs the or-parallel corpus at 1/2/4/8 workers under the pool
//! scheduler and records virtual-time speedups, then measures steal cost
//! per claimed alternative (pool vs traversal oracle) as the `member/2`
//! chain deepens. Writes the machine-readable perf-trajectory artifact
//! that CI uploads on every run.
//!
//! ```text
//! or_scaling                       # full sizes, writes BENCH_or_scaling.json
//! or_scaling --smoke               # reduced sizes (CI smoke job)
//! or_scaling --json --out FILE     # explicit output path
//! or_scaling --trace FILE          # + Perfetto trace of a 4-worker run
//! ```

use std::fs;
use std::path::PathBuf;

use ace_bench::json::Json;
use ace_core::{Ace, Mode};
use ace_runtime::{EngineConfig, FaultKind, FaultPlan, OptFlags, OrScheduler, TraceConfig};

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn cfg(b: &ace_programs::Benchmark, workers: usize, sched: OrScheduler) -> EngineConfig {
    let mut c = EngineConfig::default()
        .with_workers(workers)
        .with_opts(OptFlags::all())
        .with_or_scheduler(sched);
    c.max_solutions = if b.all_solutions { None } else { Some(1) };
    c
}

/// Speedup rows for one benchmark across `WORKER_COUNTS`.
fn scaling_entry(name: &str, smoke: bool) -> Result<Json, String> {
    let b = ace_programs::benchmark(name).ok_or_else(|| format!("unknown benchmark {name}"))?;
    let size = if smoke { b.test_size } else { b.bench_size };
    let ace = Ace::load(&(b.program)(size))?;
    let query = (b.query)(size);

    let mut runs = Vec::new();
    let mut base = None;
    let mut solutions = None;
    for w in WORKER_COUNTS {
        let r = ace
            .run(b.mode, &query, &cfg(&b, w, OrScheduler::Pool))
            .map_err(|e| format!("{name} w={w}: {e}"))?;
        let one = *base.get_or_insert(r.virtual_time);
        match solutions {
            None => solutions = Some(r.solutions.len()),
            Some(n) => {
                if n != r.solutions.len() {
                    return Err(format!(
                        "{name} w={w}: solution count changed ({n} -> {})",
                        r.solutions.len()
                    ));
                }
            }
        }
        runs.push(Json::obj([
            ("workers", w.into()),
            ("virtual_time", r.virtual_time.into()),
            ("speedup", r.speedup_from(one).into()),
            ("pool_pushes", r.stats.pool_pushes.into()),
            ("pool_pops", r.stats.pool_pops.into()),
            ("machines_recycled", r.stats.machines_recycled.into()),
            ("steal_cost_per_claim", r.steal_cost_per_claim().into()),
        ]));
    }
    Ok(Json::obj([
        ("name", name.into()),
        ("size", size.into()),
        ("solutions", solutions.unwrap_or(0).into()),
        ("runs", Json::Arr(runs)),
    ]))
}

/// Pool-vs-traversal steal cost on a deepening member chain, LAO off so
/// the public tree really grows (this is the O(1)-vs-O(depth) series).
fn steal_cost_entry(depth: usize) -> Result<Json, String> {
    let b = ace_programs::benchmark("members").expect("members benchmark exists");
    let ace = Ace::load(&(b.program)(depth))?;
    let query = (b.query)(depth);
    let mut row = vec![("depth", Json::from(depth))];
    for (key, sched) in [
        ("pool", OrScheduler::Pool),
        ("traversal", OrScheduler::Traversal),
    ] {
        let mut c = cfg(&b, 4, sched);
        c.opts = OptFlags::none();
        let r = ace
            .run(Mode::OrParallel, &query, &c)
            .map_err(|e| format!("members depth={depth} {key}: {e}"))?;
        row.push((key, r.steal_cost_per_claim().into()));
    }
    Ok(Json::Obj(
        row.into_iter().map(|(k, v)| (k.to_owned(), v)).collect(),
    ))
}

/// Claim-locality series: the procrastinated-capture payoff, measured on
/// a K-way `alt/1` choice whose continuation carries a size-S list (so
/// the closure a claimant would install grows with S). Three rows per S:
///
/// * `local` — one worker; every alternative is drained by its owner via
///   direct backtracking, so no closure is ever frozen.
/// * `local_faulted` — four workers but every steal attempt fails; nodes
///   are published (and deferred), then fully drained by their owners.
/// * `remote` — four workers stealing normally; materialization pays one
///   freeze per demanded node, amortized over all remote claims, and the
///   per-claim thaw cost is flat in S.
///
/// The two all-local rows double as the CI regression guard for the
/// defer path: they hard-fail (exit 2 via main) unless publish-side
/// copying is exactly zero, and every row must reproduce the traversal
/// oracle's answer multiset.
fn claim_locality_entry(list_len: usize, smoke: bool) -> Result<Json, String> {
    let k = if smoke { 8 } else { 12 };
    let mut program = String::new();
    for i in 1..=k {
        program.push_str(&format!("alt({i}).\n"));
    }
    program.push_str("pick(L, X) :- alt(X), walk(L).\nwalk([]).\nwalk([_|T]) :- walk(T).\n");
    let list: Vec<String> = (1..=list_len).map(|i| i.to_string()).collect();
    let query = format!("pick([{}], X)", list.join(","));
    let ace = Ace::load(&program)?;

    let locality_cfg = |workers: usize, sched: OrScheduler| {
        EngineConfig::default()
            .with_workers(workers)
            .with_opts(OptFlags::all())
            .with_or_scheduler(sched)
            .all_solutions()
    };
    let sort = |mut v: Vec<String>| {
        v.sort();
        v
    };

    let oracle = ace
        .run(
            Mode::OrParallel,
            &query,
            &locality_cfg(4, OrScheduler::Traversal),
        )
        .map_err(|e| format!("claim-locality oracle S={list_len}: {e}"))?;
    let expected = sort(oracle.solutions);
    if expected.len() != k {
        return Err(format!(
            "claim-locality oracle S={list_len}: expected {k} answers, got {}",
            expected.len()
        ));
    }

    // Saturate every worker with queued StealFail events (each armed at
    // op 0, consumed one per attempt): no remote claim ever reaches a
    // node, so every deferred closure must be elided by its owner.
    let mut starved = FaultPlan::new(0);
    for w in 0..4 {
        for _ in 0..512 {
            starved = starved.with(w, 0, FaultKind::StealFail);
        }
    }

    let mut rows = Vec::new();
    for (mode, workers, plan) in [
        ("local", 1usize, None),
        ("local_faulted", 4, Some(starved)),
        ("remote", 4, None),
    ] {
        let mut c = locality_cfg(workers, OrScheduler::Pool);
        if let Some(p) = plan {
            c = c.with_fault_plan(p);
        }
        let r = ace
            .run(Mode::OrParallel, &query, &c)
            .map_err(|e| format!("claim-locality {mode} S={list_len}: {e}"))?;
        if sort(r.solutions.clone()) != expected {
            return Err(format!(
                "claim-locality {mode} S={list_len}: answers diverge from the traversal oracle"
            ));
        }
        if mode != "remote"
            && (r.stats.cells_copied_publish != 0 || r.stats.closures_materialized != 0)
        {
            return Err(format!(
                "claim-locality {mode} S={list_len}: all-local claims must elide capture \
                 entirely (cells_copied_publish={}, closures_materialized={})",
                r.stats.cells_copied_publish, r.stats.closures_materialized
            ));
        }
        rows.push(Json::obj([
            ("mode", mode.into()),
            ("workers", workers.into()),
            ("virtual_time", r.virtual_time.into()),
            ("nodes_published", r.stats.nodes_published.into()),
            (
                "closures_materialized",
                r.stats.closures_materialized.into(),
            ),
            ("closures_elided", r.stats.closures_elided.into()),
            ("cells_copied_publish", r.stats.cells_copied_publish.into()),
            ("cells_copied_claim", r.stats.cells_copied_claim.into()),
            ("alternatives_claimed", r.stats.alternatives_claimed.into()),
        ]));
    }
    Ok(Json::obj([
        ("closure_list_len", list_len.into()),
        ("alternatives", k.into()),
        ("runs", Json::Arr(rows)),
    ]))
}

/// Traced 4-worker pool run over the first corpus benchmark; writes the
/// Chrome `trace_event` JSON for Perfetto (the CI-uploaded artifact).
fn write_trace(name: &str, smoke: bool, path: &PathBuf) -> Result<(), String> {
    let b = ace_programs::benchmark(name).ok_or_else(|| format!("unknown benchmark {name}"))?;
    let size = if smoke { b.test_size } else { b.bench_size };
    let ace = Ace::load(&(b.program)(size))?;
    let mut c = cfg(&b, 4, OrScheduler::Pool);
    c.trace = TraceConfig::enabled().with_lifecycle();
    let r = ace.run(b.mode, &(b.query)(size), &c)?;
    let trace = r
        .trace
        .as_ref()
        .ok_or("tracing enabled but no trace on the report")?;
    fs::write(path, trace.to_chrome_json()).map_err(|e| e.to_string())?;
    eprintln!(
        "wrote {} ({} events, {} workers, {} dropped)",
        path.display(),
        trace.len(),
        trace.workers(),
        trace.dropped
    );
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    // --claim-locality: run only the claim-locality series (targeted use);
    // the series always runs as part of the full/smoke sweeps too.
    let only_locality = args.iter().any(|a| a == "--claim-locality");
    // --json is the only output mode; accepted for CLI symmetry with tables.
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("BENCH_or_scaling.json"));
    let trace_out = args
        .iter()
        .position(|a| a == "--trace")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from);

    let corpus: &[&str] = if smoke {
        &["queen1", "members", "ancestors"]
    } else {
        &["queen1", "queen2", "puzzle", "ancestors", "members", "maps"]
    };
    let depths: &[usize] = if smoke { &[6, 10] } else { &[8, 16, 32] };
    let locality_sizes: &[usize] = if smoke { &[8, 32] } else { &[16, 64, 256] };

    let mut benchmarks = Vec::new();
    let mut steal = Vec::new();
    if !only_locality {
        for name in corpus {
            eprintln!("scaling {name} ...");
            match scaling_entry(name, smoke) {
                Ok(entry) => benchmarks.push(entry),
                Err(e) => {
                    eprintln!("or_scaling FAILED: {e}");
                    std::process::exit(2);
                }
            }
        }
        for &d in depths {
            eprintln!("steal cost, member chain depth {d} ...");
            match steal_cost_entry(d) {
                Ok(entry) => steal.push(entry),
                Err(e) => {
                    eprintln!("or_scaling FAILED: {e}");
                    std::process::exit(2);
                }
            }
        }
    }
    let mut locality = Vec::new();
    for &s in locality_sizes {
        eprintln!("claim locality, closure list length {s} ...");
        match claim_locality_entry(s, smoke) {
            Ok(entry) => locality.push(entry),
            Err(e) => {
                eprintln!("or_scaling FAILED: {e}");
                std::process::exit(2);
            }
        }
    }

    let doc = Json::obj([
        ("bench", "or_scaling".into()),
        ("smoke", smoke.into()),
        ("scheduler", "pool".into()),
        ("workers", WORKER_COUNTS.to_vec().into()),
        ("benchmarks", Json::Arr(benchmarks)),
        ("steal_cost_by_depth", Json::Arr(steal)),
        ("claim_locality", Json::Arr(locality)),
    ]);
    fs::write(&out, doc.render()).expect("write bench json");
    eprintln!("wrote {}", out.display());

    if let Some(path) = trace_out {
        eprintln!("tracing {} at 4 workers ...", corpus[0]);
        if let Err(e) = write_trace(corpus[0], smoke, &path) {
            eprintln!("or_scaling FAILED: {e}");
            std::process::exit(2);
        }
    }
}
