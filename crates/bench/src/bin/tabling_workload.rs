//! `tabling_workload` — or-parallel tabling bench, JSON output.
//!
//! Runs the tabled corpus (left-recursive closure, left-recursive
//! grammar, same-generation datalog — programs ordinary resolution
//! cannot terminate on) across both drivers at 1/2/4/8 workers and
//! checks, per run:
//!
//!   * termination with the sequential tabled oracle's exact answer set
//!     (sorted comparison — tabling dedups, so set == multiset),
//!   * zero duplicate answers delivered,
//!   * a warm run against the completed tables is pure lookup (no new
//!     subgoal frames) and at least 5x cheaper in virtual time.
//!
//! Any violation exits 2 so CI fails loudly. `--stress --seed N` is the
//! nightly fixpoint stress: a deep left-recursive chain with
//! seed-rotated chord edges, driving hundreds of suspend/resume rounds
//! through the SCC completion machinery on both drivers.
//!
//! ```text
//! tabling_workload                    # full sizes, writes BENCH_tabling.json
//! tabling_workload --smoke            # reduced sizes (CI smoke job)
//! tabling_workload --stress --seed N  # nightly deep-SCC stress, no artifact
//! tabling_workload --out FILE         # explicit output path
//! ```

use std::fs;
use std::path::PathBuf;
use std::sync::Arc;

use ace_bench::json::Json;
use ace_core::{Ace, Mode, RunReport};
use ace_programs::{tabled, TabledProgram};
use ace_runtime::{DriverKind, EngineConfig, OptFlags, TableConfig, TableSpace};

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];
const DRIVERS: [(DriverKind, &str); 2] =
    [(DriverKind::Sim, "sim"), (DriverKind::Threads, "threads")];

fn space() -> Arc<TableSpace> {
    Arc::new(TableSpace::new(&TableConfig::enabled().with_shards(8)))
}

fn cfg(workers: usize, driver: DriverKind, table: &Arc<TableSpace>) -> EngineConfig {
    EngineConfig::default()
        .with_workers(workers)
        .with_driver(driver)
        .with_opts(OptFlags::all())
        .with_table_space(table.clone())
        .all_solutions()
}

fn sorted(mut v: Vec<String>) -> Vec<String> {
    v.sort();
    v
}

/// No run may ever deliver the same answer twice: duplicate elimination
/// happens at answer insertion, before consumers see anything.
fn check_no_dups(label: &str, sols: &[String]) -> Result<(), String> {
    let mut uniq = sols.to_vec();
    uniq.sort();
    uniq.dedup();
    if uniq.len() != sols.len() {
        return Err(format!(
            "{label}: {} duplicate answers delivered",
            sols.len() - uniq.len()
        ));
    }
    Ok(())
}

fn stats_json(r: &RunReport) -> Json {
    Json::obj([
        ("virtual_time", r.virtual_time.into()),
        ("subgoals", r.stats.table_subgoals.into()),
        ("answers", r.stats.table_answers.into()),
        ("dups", r.stats.table_dups.into()),
        ("suspends", r.stats.table_suspends.into()),
        ("resumes", r.stats.table_resumes.into()),
        ("completes", r.stats.table_completes.into()),
        ("hits", r.stats.table_hits.into()),
    ])
}

fn program_entry(p: &TabledProgram, size: usize) -> Result<Json, String> {
    let src = (p.program)(size);
    let query = (p.query)(size);
    let ace = Ace::load(&src).map_err(|e| format!("{}: {e}", p.name))?;
    let oracle_len = (p.oracle)(size);

    // Sequential tabled evaluation is the oracle (the untabled program
    // does not terminate), cross-checked against the closed-form count.
    let seq_space = space();
    let seq_cold = ace
        .run(
            Mode::Sequential,
            &query,
            &cfg(1, DriverKind::Sim, &seq_space),
        )
        .map_err(|e| format!("{}: sequential: {e}", p.name))?;
    let oracle = sorted(seq_cold.solutions.clone());
    check_no_dups(&format!("{} sequential", p.name), &oracle)?;
    if oracle.len() != oracle_len {
        return Err(format!(
            "{}: sequential found {} answers, closed-form oracle says {oracle_len}",
            p.name,
            oracle.len()
        ));
    }

    // Completed tables must turn re-evaluation into pure lookup: no new
    // subgoal frames, and at least 5x cheaper in virtual time.
    let seq_warm = ace
        .run(
            Mode::Sequential,
            &query,
            &cfg(1, DriverKind::Sim, &seq_space),
        )
        .map_err(|e| format!("{}: sequential warm: {e}", p.name))?;
    if sorted(seq_warm.solutions.clone()) != oracle {
        return Err(format!("{}: warm sequential answers differ", p.name));
    }
    if seq_warm.stats.table_subgoals != 0 {
        return Err(format!(
            "{}: warm run re-framed {} subgoals",
            p.name, seq_warm.stats.table_subgoals
        ));
    }
    let lookup_speedup = seq_cold.virtual_time as f64 / seq_warm.virtual_time.max(1) as f64;
    if lookup_speedup < 5.0 {
        return Err(format!(
            "{}: completed-table lookup only {lookup_speedup:.2}x cheaper \
             ({} -> {}), expected >= 5x",
            p.name, seq_cold.virtual_time, seq_warm.virtual_time
        ));
    }

    let mut runs = Vec::new();
    for (driver, dname) in DRIVERS {
        for w in WORKER_COUNTS {
            let label = format!("{} {dname} workers={w}", p.name);
            let table = space();
            let cold = ace
                .run(Mode::OrParallel, &query, &cfg(w, driver, &table))
                .map_err(|e| format!("{label}: {e}"))?;
            check_no_dups(&label, &cold.solutions)?;
            if sorted(cold.solutions.clone()) != oracle {
                return Err(format!(
                    "{label}: answer set diverged from the sequential oracle \
                     ({} vs {} answers)",
                    cold.solutions.len(),
                    oracle.len()
                ));
            }

            let warm = ace
                .run(Mode::OrParallel, &query, &cfg(w, driver, &table))
                .map_err(|e| format!("{label} warm: {e}"))?;
            check_no_dups(&format!("{label} warm"), &warm.solutions)?;
            if sorted(warm.solutions.clone()) != oracle {
                return Err(format!("{label}: warm answer set diverged"));
            }
            if warm.stats.table_subgoals != 0 {
                return Err(format!(
                    "{label}: warm run re-framed {} subgoals",
                    warm.stats.table_subgoals
                ));
            }

            runs.push(Json::obj([
                ("driver", dname.into()),
                ("workers", w.into()),
                ("cold", stats_json(&cold)),
                ("warm", stats_json(&warm)),
                (
                    "speedup_vs_seq",
                    cold.speedup_from(seq_cold.virtual_time).into(),
                ),
            ]));
        }
    }

    Ok(Json::obj([
        ("name", p.name.into()),
        ("size", size.into()),
        ("answers", oracle.len().into()),
        ("virtual_time_seq", seq_cold.virtual_time.into()),
        ("lookup_speedup", lookup_speedup.into()),
        ("runs", Json::Arr(runs)),
    ]))
}

/// Nightly fixpoint stress: a left-recursive chain of `len` nodes with
/// seed-rotated forward chords. Every node is an SCC member of the one
/// generator's fixpoint, so completion crosses hundreds of
/// suspend/resume rounds; the chords vary the resumption order run to
/// run without changing the closure (all edges point forward).
fn stress(len: usize, seed: u64) -> Result<(), String> {
    let mut src = String::from(
        ":- table(path/2).\npath(X, Y) :- path(X, Z), edge(Z, Y).\npath(X, Y) :- edge(X, Y).\n",
    );
    for i in 0..len {
        src.push_str(&format!("edge(n{i}, n{}).\n", i + 1));
    }
    // Chords: deterministic in the seed, always forward jumps.
    let mut state = seed
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    for _ in 0..len / 8 {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let from = (state >> 33) as usize % len;
        let jump = 2 + (state >> 17) as usize % 7;
        let to = (from + jump).min(len);
        src.push_str(&format!("edge(n{from}, n{to}).\n"));
    }

    let ace = Ace::load(&src)?;
    for (driver, dname) in DRIVERS {
        let table = space();
        let r = ace
            .run(Mode::OrParallel, "path(n0, X)", &cfg(8, driver, &table))
            .map_err(|e| format!("stress {dname}: {e}"))?;
        check_no_dups(&format!("stress {dname}"), &r.solutions)?;
        if r.solutions.len() != len {
            return Err(format!(
                "stress {dname}: {} answers from a {len}-node chain",
                r.solutions.len()
            ));
        }
        if r.stats.table_suspends == 0 || r.stats.table_resumes == 0 {
            return Err(format!(
                "stress {dname}: fixpoint never suspended/resumed ({})",
                r.stats.summary()
            ));
        }
        eprintln!(
            "stress {dname}: {len} nodes ok, {} suspends / {} resumes",
            r.stats.table_suspends, r.stats.table_resumes
        );
    }
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("BENCH_tabling.json"));

    if args.iter().any(|a| a == "--stress") {
        let seed = args
            .iter()
            .position(|a| a == "--seed")
            .and_then(|i| args.get(i + 1))
            .and_then(|s| s.parse().ok())
            .unwrap_or(1);
        let len = if smoke { 60 } else { 300 };
        eprintln!("tabling fixpoint stress: {len}-node chain, seed {seed} ...");
        if let Err(e) = stress(len, seed) {
            eprintln!("tabling_workload FAILED: {e}");
            std::process::exit(2);
        }
        return;
    }

    let mut entries = Vec::new();
    for p in tabled() {
        let size = if smoke { p.test_size } else { p.bench_size };
        eprintln!("tabling workload: {} at size {size} ...", p.name);
        match program_entry(&p, size) {
            Ok(entry) => entries.push(entry),
            Err(e) => {
                eprintln!("tabling_workload FAILED: {e}");
                std::process::exit(2);
            }
        }
    }

    let doc = Json::obj([
        ("bench", "tabling_workload".into()),
        ("smoke", smoke.into()),
        ("workers", WORKER_COUNTS.to_vec().into()),
        (
            "drivers",
            Json::Arr(DRIVERS.iter().map(|(_, n)| (*n).into()).collect()),
        ),
        ("programs", Json::Arr(entries)),
    ]);
    fs::write(&out, doc.render()).expect("write bench json");
    eprintln!("wrote {}", out.display());
}
