//! `tables` — regenerate the paper's tables and figures.
//!
//! ```text
//! tables                  # run every experiment at full size
//! tables table2 fig5      # run specific experiments
//! tables --quick          # halved sizes (smoke run)
//! tables --list           # list experiments
//! tables --out DIR        # write .txt/.csv results (default: results/)
//! ```

use std::fs;
use std::path::PathBuf;

use ace_bench::{experiments, render_csv, render_table, run_experiment};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let list = args.iter().any(|a| a == "--list");
    let out_dir = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"));
    let wanted: Vec<&String> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .filter(|a| {
            // skip the value of --out
            args.iter()
                .position(|x| x == "--out")
                .is_none_or(|i| args.get(i + 1) != Some(*a))
        })
        .collect();

    let all = experiments();
    if list {
        for e in &all {
            println!("{:<10} {}", e.id, e.title);
        }
        return;
    }

    let selected: Vec<_> = if wanted.is_empty() {
        all
    } else {
        all.into_iter()
            .filter(|e| wanted.iter().any(|w| *w == e.id))
            .collect()
    };
    if selected.is_empty() {
        eprintln!("no matching experiments; try --list");
        std::process::exit(1);
    }

    fs::create_dir_all(&out_dir).expect("create results dir");
    for exp in &selected {
        eprintln!(
            "running {}{} ...",
            exp.id,
            if quick { " (quick)" } else { "" }
        );
        let started = std::time::Instant::now();
        match run_experiment(exp, quick) {
            Ok(result) => {
                let txt = render_table(&result);
                println!("{txt}");
                let base = out_dir.join(exp.id);
                fs::write(base.with_extension("txt"), &txt).unwrap();
                fs::write(base.with_extension("csv"), render_csv(&result)).unwrap();
                eprintln!(
                    "{} done in {:.1}s (results/{}.txt, .csv)",
                    exp.id,
                    started.elapsed().as_secs_f64(),
                    exp.id
                );
            }
            Err(e) => {
                eprintln!("{} FAILED: {e}", exp.id);
                std::process::exit(2);
            }
        }
    }
}
