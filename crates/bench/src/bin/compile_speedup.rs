//! `compile_speedup` — clause-compilation bench, JSON output.
//!
//! Runs a sequential corpus twice per benchmark: once with the default
//! register-code execution (compiled head code + switch-on-term
//! first-argument dispatch) and once with the tree-walking interpreter
//! oracle (`ClauseExec::Interpreted`, linear clause scan). Checks the
//! answers are identical, records virtual-time and wall-clock speedups
//! plus the indexing counters, and fails loudly if the corpus geometric
//! mean drops below the 2x acceptance bar in either measure. Writes the
//! machine-readable artifact CI uploads on every run.
//!
//! ```text
//! compile_speedup                    # full sizes, writes BENCH_compile.json
//! compile_speedup --smoke            # test sizes (CI smoke job)
//! compile_speedup --json --out FILE  # explicit output path
//! ```

use std::fs;
use std::path::PathBuf;
use std::time::Duration;

use ace_bench::json::Json;
use ace_core::{Ace, Mode, RunReport};
use ace_runtime::{ClauseExec, EngineConfig, OptFlags};

/// Corpus: benchmarks where clause selection is on the hot path — list
/// recursion (compiled unify instructions), integer first arguments
/// (switch-on-term prunes the scan), and deep backtracking search (every
/// retry replays dispatch).
const CORPUS: [&str; 8] = [
    "quick_sort",
    "takeuchi",
    "hanoi",
    "pderiv",
    "bt_cluster",
    "queen1",
    "members",
    "ancestors",
];

/// Wall-clock reps per configuration; the minimum is reported (standard
/// practice for shaking scheduler noise out of short runs).
const WALL_REPS: usize = 7;

/// Acceptance bar: corpus geometric-mean speedup of compiled over
/// interpreted execution, in both virtual time and wall clock.
const MIN_GEOMEAN: f64 = 2.0;

fn cfg(all_solutions: bool, exec: ClauseExec) -> EngineConfig {
    let mut c = EngineConfig::default()
        .with_opts(OptFlags::all())
        .with_clause_exec(exec);
    c.max_solutions = if all_solutions { None } else { Some(1) };
    c
}

/// Run `reps` times sequentially, returning the (deterministic) report of
/// the first run with its `wall` replaced by the minimum across reps.
fn timed(ace: &Ace, query: &str, c: &EngineConfig) -> Result<RunReport, String> {
    let reps = std::env::var("COMPILE_BENCH_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(WALL_REPS);
    let mut best: Option<RunReport> = None;
    for _ in 0..reps {
        let r = ace.run(Mode::Sequential, query, c)?;
        if std::env::var("COMPILE_BENCH_DEBUG").is_ok() {
            eprintln!("      rep wall {:>9.0}us", r.wall.as_secs_f64() * 1e6);
        }
        best = Some(match best.take() {
            None => r,
            Some(mut b) => {
                b.wall = b.wall.min(r.wall);
                b
            }
        });
    }
    Ok(best.unwrap())
}

fn micros(d: Duration) -> f64 {
    d.as_secs_f64() * 1e6
}

fn bench_entry(name: &str, smoke: bool) -> Result<(Json, f64, f64), String> {
    let b = ace_programs::benchmark(name).ok_or_else(|| format!("unknown benchmark {name}"))?;
    let size = if smoke { b.test_size } else { b.bench_size };
    let ace = Ace::load(&(b.program)(size))?;
    let query = (b.query)(size);

    let compiled = timed(&ace, &query, &cfg(b.all_solutions, ClauseExec::Compiled))
        .map_err(|e| format!("{name} (compiled): {e}"))?;
    let interp = timed(&ace, &query, &cfg(b.all_solutions, ClauseExec::Interpreted))
        .map_err(|e| format!("{name} (interpreted): {e}"))?;

    if compiled.solutions != interp.solutions {
        return Err(format!(
            "{name}: compiled solutions differ from the interpreter oracle \
             ({} vs {} solution(s))",
            compiled.solutions.len(),
            interp.solutions.len()
        ));
    }

    if std::env::var("COMPILE_BENCH_DEBUG").is_ok() {
        for (label, r) in [("interp", &interp), ("compiled", &compiled)] {
            eprintln!(
                "    [{label}] calls={} cps={} retries={} heap={} unify={} undo={} cache={}",
                r.stats.calls,
                r.stats.choice_points,
                r.stats.backtracks,
                r.stats.heap_cells,
                r.stats.unify_steps,
                r.stats.trail_undos,
                r.stats.code_cache_hits,
            );
        }
    }
    let vt_speedup = interp.virtual_time as f64 / compiled.virtual_time.max(1) as f64;
    let wall_speedup = micros(interp.wall) / micros(compiled.wall).max(1e-3);
    eprintln!(
        "  {name:<12} size {size:>3}: virtual {:>9} -> {:>9} ({vt_speedup:.2}x), \
         wall {:>9.0}us -> {:>9.0}us ({wall_speedup:.2}x)",
        interp.virtual_time,
        compiled.virtual_time,
        micros(interp.wall),
        micros(compiled.wall),
    );

    let entry = Json::obj([
        ("name", name.into()),
        ("size", size.into()),
        ("solutions", compiled.solutions.len().into()),
        ("virtual_time_interpreted", interp.virtual_time.into()),
        ("virtual_time_compiled", compiled.virtual_time.into()),
        ("virtual_speedup", vt_speedup.into()),
        ("wall_us_interpreted", micros(interp.wall).into()),
        ("wall_us_compiled", micros(compiled.wall).into()),
        ("wall_speedup", wall_speedup.into()),
        (
            "choice_points_interpreted",
            interp.stats.choice_points.into(),
        ),
        (
            "choice_points_compiled",
            compiled.stats.choice_points.into(),
        ),
        ("code_cache_hits", compiled.stats.code_cache_hits.into()),
        (
            "clauses_skipped_by_index",
            compiled.stats.clauses_skipped_by_index.into(),
        ),
        (
            "index_determinate_calls",
            compiled.stats.index_determinate_calls.into(),
        ),
    ]);
    Ok((entry, vt_speedup, wall_speedup))
}

fn geomean(xs: &[f64]) -> f64 {
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    // --json is the only output mode; accepted for CLI symmetry with tables.
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("BENCH_compile.json"));

    eprintln!(
        "compile speedup: compiled register code vs interpreter oracle, \
         {} benchmark(s){} ...",
        CORPUS.len(),
        if smoke { " (smoke sizes)" } else { "" }
    );

    let only = std::env::var("COMPILE_BENCH_ONLY").ok();
    let mut entries = Vec::new();
    let mut vt_speedups = Vec::new();
    let mut wall_speedups = Vec::new();
    for name in CORPUS {
        if let Some(o) = &only {
            if o != name {
                continue;
            }
        }
        match bench_entry(name, smoke) {
            Ok((entry, vt, wall)) => {
                entries.push(entry);
                vt_speedups.push(vt);
                wall_speedups.push(wall);
            }
            Err(e) => {
                eprintln!("compile_speedup FAILED: {e}");
                std::process::exit(2);
            }
        }
    }

    let vt_geomean = geomean(&vt_speedups);
    let wall_geomean = geomean(&wall_speedups);
    eprintln!(
        "geomean speedup: {vt_geomean:.2}x virtual time, {wall_geomean:.2}x wall clock \
         (bar: {MIN_GEOMEAN:.1}x)"
    );

    let doc = Json::obj([
        ("bench", "compile_speedup".into()),
        ("smoke", smoke.into()),
        ("corpus", CORPUS.to_vec().into()),
        ("wall_reps", WALL_REPS.into()),
        ("geomean_virtual_speedup", vt_geomean.into()),
        ("geomean_wall_speedup", wall_geomean.into()),
        ("min_geomean", MIN_GEOMEAN.into()),
        ("benchmarks", Json::Arr(entries)),
    ]);
    fs::write(&out, doc.render()).expect("write bench json");
    eprintln!("wrote {}", out.display());

    if vt_geomean < MIN_GEOMEAN || wall_geomean < MIN_GEOMEAN {
        eprintln!(
            "compile_speedup FAILED: geomean speedup below the {MIN_GEOMEAN:.1}x bar \
             (virtual {vt_geomean:.2}x, wall {wall_geomean:.2}x)"
        );
        std::process::exit(2);
    }
}
