//! `memo_workload` — answer-memoization bench, JSON output.
//!
//! Runs a repeated-subgoal workload (a parallel conjunction of identical
//! deterministic `nrev` cells, structurally indexed so every subgoal is
//! tabled) on the and-engine at 1/2/4/8 workers, three ways per worker
//! count: memo off, memo on with a cold table, and memo on against the
//! warm table the cold run filled. Records virtual-time speedups, call
//! counts (the "subgoal re-execution" measure) and table hit rates, and
//! fails loudly if memoization does not at least halve the executed
//! calls. Writes the machine-readable artifact CI uploads on every run.
//!
//! ```text
//! memo_workload                    # full sizes, writes BENCH_memo.json
//! memo_workload --smoke            # reduced sizes (CI smoke job)
//! memo_workload --json --out FILE  # explicit output path
//! ```

use std::fs;
use std::path::PathBuf;
use std::sync::Arc;

use ace_bench::json::Json;
use ace_core::{Ace, Mode, RunReport};
use ace_runtime::{EngineConfig, MemoConfig, MemoTable, OptFlags};

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// The repeated-subgoal program: `cells` parallel calls that all reverse
/// the same `len`-element list. First-argument indexing on `[]`/`[H|T]`
/// keeps every subgoal deterministic, so the whole recursion tables.
fn program(len: usize, cells: usize) -> (String, String) {
    let list = (1..=len)
        .map(|i| i.to_string())
        .collect::<Vec<_>>()
        .join(",");
    let vars: Vec<String> = (0..cells).map(|i| format!("R{i}")).collect();
    let body = vars
        .iter()
        .map(|v| format!("cell({v})"))
        .collect::<Vec<_>>()
        .join(" & ");
    let src = format!(
        r#"
        append([], L, L).
        append([H|T], L, [H|R]) :- append(T, L, R).
        nrev([], []).
        nrev([H|T], R) :- nrev(T, RT), append(RT, [H], R).
        cell(R) :- nrev([{list}], R).
        run({args}) :- {body}.
        "#,
        args = vars.join(", "),
    );
    (src, format!("run({})", vars.join(", ")))
}

fn cfg(workers: usize) -> EngineConfig {
    EngineConfig::default()
        .with_workers(workers)
        .with_opts(OptFlags::all())
        .all_solutions()
}

fn run(
    ace: &Ace,
    query: &str,
    workers: usize,
    memo: Option<&Arc<MemoTable>>,
) -> Result<RunReport, String> {
    let mut c = cfg(workers);
    if let Some(t) = memo {
        c = c.with_memo_table(t.clone());
    }
    ace.run(Mode::AndParallel, query, &c)
        .map_err(|e| format!("workers={workers}: {e}"))
}

fn stats_json(r: &RunReport) -> Json {
    let lookups = r.stats.memo_hits + r.stats.memo_misses;
    Json::obj([
        ("virtual_time", r.virtual_time.into()),
        ("calls", r.stats.calls.into()),
        ("hits", r.stats.memo_hits.into()),
        ("misses", r.stats.memo_misses.into()),
        ("stores", r.stats.memo_stores.into()),
        ("evictions", r.stats.memo_evictions.into()),
        (
            "hit_rate",
            (lookups > 0)
                .then(|| r.stats.memo_hits as f64 / lookups as f64)
                .into(),
        ),
    ])
}

fn workload_entry(len: usize, cells: usize) -> Result<Json, String> {
    let (src, query) = program(len, cells);
    let ace = Ace::load(&src)?;

    let mut runs = Vec::new();
    for w in WORKER_COUNTS {
        let off = run(&ace, &query, w, None)?;

        let table = Arc::new(MemoTable::new(&MemoConfig::enabled()));
        let cold = run(&ace, &query, w, Some(&table))?;
        let warm = run(&ace, &query, w, Some(&table))?;
        for (label, r) in [("cold", &cold), ("warm", &warm)] {
            if r.solutions != off.solutions {
                return Err(format!(
                    "workers={w}: memo-on ({label}) solutions differ from memo-off"
                ));
            }
        }

        // The acceptance bar: even a cold table must at least halve the
        // executed calls on this workload (every cell after the first
        // replays, and racing workers still share the suffix results).
        let reexec_ratio = off.stats.calls as f64 / cold.stats.calls.max(1) as f64;
        if reexec_ratio < 2.0 {
            return Err(format!(
                "workers={w}: cold memo run only cut calls {reexec_ratio:.2}x \
                 ({} -> {}), expected >= 2x",
                off.stats.calls, cold.stats.calls
            ));
        }

        runs.push(Json::obj([
            ("workers", w.into()),
            ("virtual_time_off", off.virtual_time.into()),
            ("calls_off", off.stats.calls.into()),
            ("cold", stats_json(&cold)),
            ("warm", stats_json(&warm)),
            ("speedup_cold", cold.speedup_from(off.virtual_time).into()),
            ("speedup_warm", warm.speedup_from(off.virtual_time).into()),
            ("reexec_ratio_cold", reexec_ratio.into()),
            (
                "reexec_ratio_warm",
                (off.stats.calls as f64 / warm.stats.calls.max(1) as f64).into(),
            ),
        ]));
    }
    Ok(Json::obj([
        ("name", "repeated_nrev_cells".into()),
        ("list_len", len.into()),
        ("cells", cells.into()),
        ("runs", Json::Arr(runs)),
    ]))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    // --json is the only output mode; accepted for CLI symmetry with tables.
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("BENCH_memo.json"));

    let (len, cells) = if smoke { (8, 6) } else { (16, 12) };
    eprintln!("memo workload: {cells} cells of nrev/{len} ...");
    let entry = match workload_entry(len, cells) {
        Ok(entry) => entry,
        Err(e) => {
            eprintln!("memo_workload FAILED: {e}");
            std::process::exit(2);
        }
    };

    let doc = Json::obj([
        ("bench", "memo_workload".into()),
        ("smoke", smoke.into()),
        ("workers", WORKER_COUNTS.to_vec().into()),
        ("workload", entry),
    ]);
    fs::write(&out, doc.render()).expect("write bench json");
    eprintln!("wrote {}", out.display());
}
