//! `ablation` — cost-model sensitivity analysis.
//!
//! The reproduction's conclusions rest on a calibrated cost model
//! (`ace_runtime::CostModel`). This harness varies one price at a time and
//! reports how each optimization's improvement responds, showing which
//! conclusions are robust to calibration and which are driven by a
//! particular constant:
//!
//! * `marker_alloc`  → SPO's gain (it removes exactly these);
//! * `frame_traverse` + `parcall_frame_alloc` → LPCO's backward-execution
//!   gain (flattening removes traversals and frames);
//! * `tree_visit` → LAO's gain (shallow public trees are cheap to scan);
//! * `steal`/`queue_op` → PDO's gain (owner-local execution avoids them).
//!
//! ```sh
//! cargo run --release -p ace-bench --bin ablation
//! ```

use ace_core::Ace;
use ace_runtime::{CostModel, EngineConfig, OptFlags};

struct Knob {
    name: &'static str,
    values: [u64; 3],
    set: fn(&mut CostModel, u64),
    benchmark: &'static str,
    size: usize,
    workers: usize,
    base: OptFlags,
    opt: OptFlags,
    optimization: &'static str,
}

fn knobs() -> Vec<Knob> {
    vec![
        Knob {
            name: "marker_alloc",
            values: [5, 30, 120],
            set: |c, v| c.marker_alloc = v,
            benchmark: "takeuchi",
            size: 9,
            workers: 4,
            base: OptFlags::none(),
            opt: OptFlags::spo_only(),
            optimization: "SPO",
        },
        Knob {
            name: "frame_traverse",
            values: [12, 48, 200],
            set: |c, v| c.frame_traverse = v,
            benchmark: "matrix_bt",
            size: 8,
            workers: 4,
            base: OptFlags::none(),
            opt: OptFlags::lpco_only(),
            optimization: "LPCO (backward)",
        },
        Knob {
            name: "parcall_frame_alloc",
            values: [10, 40, 160],
            set: |c, v| c.parcall_frame_alloc = v,
            benchmark: "map2",
            size: 30,
            workers: 4,
            base: OptFlags::none(),
            opt: OptFlags::lpco_only(),
            optimization: "LPCO (forward)",
        },
        Knob {
            name: "tree_visit",
            values: [2, 8, 40],
            set: |c, v| c.tree_visit = v,
            benchmark: "members",
            size: 14,
            workers: 8,
            base: OptFlags::none(),
            opt: OptFlags::lao_only(),
            optimization: "LAO",
        },
        Knob {
            name: "steal",
            values: [5, 30, 150],
            set: |c, v| c.steal = v,
            benchmark: "takeuchi",
            size: 9,
            workers: 1,
            base: OptFlags::lpco_only(),
            opt: OptFlags {
                lpco: true,
                pdo: true,
                ..OptFlags::none()
            },
            optimization: "PDO",
        },
    ]
}

fn main() {
    println!(
        "{:<22} {:>8} {:>12} {:>12} {:>12}  optimization",
        "knob", "value", "t_base", "t_opt", "improvement"
    );
    for k in knobs() {
        let b = ace_programs::benchmark(k.benchmark).expect("corpus");
        let ace = Ace::load(&(b.program)(k.size)).expect("load");
        let query = (b.query)(k.size);
        for v in k.values {
            let mut costs = CostModel::default();
            (k.set)(&mut costs, v);
            let mk = |opts: OptFlags| {
                let mut c = EngineConfig::default()
                    .with_workers(k.workers)
                    .with_opts(opts);
                c.costs = costs.clone();
                c.max_solutions = if b.all_solutions { None } else { Some(1) };
                c
            };
            let r0 = ace.run(b.mode, &query, &mk(k.base)).expect("base run");
            let r1 = ace.run(b.mode, &query, &mk(k.opt)).expect("opt run");
            println!(
                "{:<22} {:>8} {:>12} {:>12} {:>11.1}%  {} on {}",
                k.name,
                v,
                r0.virtual_time,
                r1.virtual_time,
                r0.improvement_over(&r1),
                k.optimization,
                k.benchmark
            );
        }
        println!();
    }
    println!(
        "Reading: each optimization's gain should grow with the price of\n\
         the operation it eliminates — confirming the mechanism — while\n\
         remaining positive across the sweep (robustness)."
    );
}
