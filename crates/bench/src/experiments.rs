//! The experiment definitions: which benchmarks, sizes, worker counts and
//! optimization flags reproduce each table/figure of the paper.

use ace_runtime::{OptFlags, OrScheduler};

/// What shape of output the experiment produces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExperimentKind {
    /// unopt/opt execution times + improvement per worker count (a paper
    /// table).
    Table,
    /// per-worker-count series for plotting (a paper figure); emitted as
    /// one unopt and one opt series per benchmark.
    Curves,
    /// §2.3 overhead comparison: sequential vs 1-worker parallel.
    Overhead,
}

/// One reproducible experiment.
#[derive(Debug, Clone)]
pub struct Experiment {
    /// Harness id (`table1` … `fig8`, `overhead`).
    pub id: &'static str,
    /// What the paper calls it.
    pub title: &'static str,
    pub kind: ExperimentKind,
    /// `(benchmark name, size)` pairs. `usize::MAX` size = benchmark's
    /// own `bench_size`.
    pub benchmarks: Vec<(&'static str, usize)>,
    /// Worker counts (the paper's "Number of Processors" columns).
    pub workers: Vec<usize>,
    /// The baseline configuration (usually `OptFlags::none()`).
    pub base: OptFlags,
    /// The optimized configuration (baseline + the optimization under
    /// test).
    pub opt: OptFlags,
    /// What the paper reports, for EXPERIMENTS.md cross-reference.
    pub paper_claim: &'static str,
    /// Or-engine work-finding scheduler. Experiments whose paper numbers
    /// are statements about tree-walking schedulers (Table 3: LAO's win
    /// is largely avoided traversal) pin `Traversal`; everything else
    /// uses the production default.
    pub or_scheduler: OrScheduler,
}

/// Scale factor applied to sizes for `--quick` runs.
pub fn quick_size(size: usize) -> usize {
    (size / 2).max(2)
}

/// All experiments, in paper order.
pub fn experiments() -> Vec<Experiment> {
    vec![
        Experiment {
            id: "table1",
            title: "Table 1 — LPCO savings, forward execution only",
            kind: ExperimentKind::Table,
            benchmarks: vec![("map2", 40), ("occur", 24)],
            workers: vec![1, 3, 5, 10],
            base: OptFlags::none(),
            opt: OptFlags::lpco_only(),
            paper_claim: "map2: 8-26% improvement; occur(5): 14-19%; \
                          LPCO helps only marginally in forward execution",
            or_scheduler: OrScheduler::Pool,
        },
        Experiment {
            id: "table2",
            title: "Table 2 — LPCO with backward execution",
            kind: ExperimentKind::Table,
            benchmarks: vec![
                ("matrix_bt", 10),
                ("pderiv_bt", 10),
                ("map1", 12),
                ("annotator_bt", 10),
            ],
            workers: vec![1, 3, 5, 10],
            base: OptFlags::none(),
            opt: OptFlags::lpco_only(),
            paper_claim: "matrix: 15-54%; pderiv: 41-65%; map1: 38-84%; \
                          annotator: 1-4%; gains grow with worker count",
            or_scheduler: OrScheduler::Pool,
        },
        Experiment {
            id: "fig5",
            title: "Figure 5 — speedup curves on backward execution",
            kind: ExperimentKind::Curves,
            benchmarks: vec![("map1", 12), ("matrix_bt", 10), ("pderiv_bt", 10)],
            workers: vec![1, 2, 3, 4, 5, 6, 8, 10],
            base: OptFlags::none(),
            opt: OptFlags::lpco_only(),
            paper_claim: "map without LPCO shows almost no speedup; with \
                          LPCO almost linear; matrix/pderiv improve clearly",
            or_scheduler: OrScheduler::Pool,
        },
        Experiment {
            id: "table3",
            title: "Table 3 — Last Alternative Optimization (or-parallel)",
            kind: ExperimentKind::Table,
            benchmarks: vec![
                ("queen1", 7),
                ("queen2", 6),
                ("puzzle", 1),
                ("ancestors", 10),
                ("members", 18),
                ("maps", 1),
            ],
            workers: vec![1, 2, 4, 8, 10],
            base: OptFlags::none(),
            opt: OptFlags::lao_only(),
            paper_claim: "slight loss on 1 processor (-2..-10%), growing \
                          gains with processors (up to 67% on Queen1 at 10)",
            // the paper's LAO numbers presuppose traversal-cost stealing
            or_scheduler: OrScheduler::Traversal,
        },
        Experiment {
            id: "table4",
            title: "Table 4 — Shallow Parallelism Optimization",
            kind: ExperimentKind::Table,
            benchmarks: vec![
                ("matrix", 14),
                ("takeuchi", 10),
                ("hanoi", 10),
                ("occur", 24),
                ("bt_cluster", 16),
                ("annotator", 10),
            ],
            workers: vec![1, 3, 5, 10],
            base: OptFlags::none(),
            opt: OptFlags::spo_only(),
            paper_claim: "5-25% improvement across the board (deterministic \
                          subgoals never allocate markers)",
            or_scheduler: OrScheduler::Pool,
        },
        Experiment {
            id: "fig8",
            title: "Figure 8 — execution time with shallow parallelism",
            kind: ExperimentKind::Curves,
            benchmarks: vec![("annotator", 10), ("occur", 24), ("hanoi", 10)],
            workers: vec![1, 2, 3, 4, 5, 6, 8, 10],
            base: OptFlags::none(),
            opt: OptFlags::spo_only(),
            paper_claim: "optimized curves sit uniformly below unoptimized \
                          ones at every processor count",
            or_scheduler: OrScheduler::Pool,
        },
        Experiment {
            id: "table5",
            title: "Table 5 — Processor Determinacy Optimization",
            kind: ExperimentKind::Table,
            benchmarks: vec![
                ("matrix", 14),
                ("quick_sort", 120),
                ("takeuchi", 10),
                ("occur", 24),
                ("bt_cluster", 16),
                ("annotator", 10),
            ],
            workers: vec![1, 3, 5, 10],
            // PDO needs adjacent schedulable subgoals; those exist on the
            // LPCO-flattened engine (wide frames), so its marginal
            // contribution is measured on top of LPCO.
            base: OptFlags::lpco_only(),
            opt: OptFlags {
                lpco: true,
                pdo: true,
                ..OptFlags::none()
            },
            paper_claim: "7-45% improvement; largest on 1 processor where \
                          every adjacent pair merges",
            or_scheduler: OrScheduler::Pool,
        },
        Experiment {
            id: "overhead",
            title: "§2.3 — parallel overhead vs the sequential system",
            kind: ExperimentKind::Overhead,
            benchmarks: vec![
                ("map2", 40),
                ("matrix", 14),
                ("takeuchi", 10),
                ("hanoi", 10),
                ("occur", 24),
                ("bt_cluster", 16),
                ("annotator", 10),
                ("quick_sort", 120),
            ],
            workers: vec![1],
            base: OptFlags::none(),
            opt: OptFlags::all(),
            paper_claim: "unoptimized &ACE incurs 10-25% overhead vs \
                          sequential SICStus; with all optimizations <5% \
                          (often <2%)",
            or_scheduler: OrScheduler::Pool,
        },
    ]
}

/// Look an experiment up by id.
pub fn experiment(id: &str) -> Option<Experiment> {
    experiments().into_iter().find(|e| e.id == id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_paper_artifacts_covered() {
        let ids: Vec<&str> = experiments().iter().map(|e| e.id).collect();
        assert_eq!(
            ids,
            vec!["table1", "table2", "fig5", "table3", "table4", "fig8", "table5", "overhead"]
        );
    }

    #[test]
    fn benchmarks_exist_in_corpus() {
        for e in experiments() {
            for (name, _) in &e.benchmarks {
                assert!(
                    ace_programs::benchmark(name).is_some(),
                    "experiment {} references unknown benchmark {name}",
                    e.id
                );
            }
        }
    }

    #[test]
    fn table3_is_or_parallel_rest_and_parallel() {
        use ace_core::Mode;
        for e in experiments() {
            for (name, _) in &e.benchmarks {
                let b = ace_programs::benchmark(name).unwrap();
                if e.id == "table3" {
                    assert_eq!(b.mode, Mode::OrParallel, "{name}");
                } else {
                    assert_eq!(b.mode, Mode::AndParallel, "{name}");
                }
            }
        }
    }
}
