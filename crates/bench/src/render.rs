//! Rendering experiment results as paper-style text tables and CSV.

use std::fmt::Write as _;

use crate::experiments::ExperimentKind;
use crate::runner::ExperimentResult;

/// Render in the paper's `unopt/opt (improv%)` row format.
pub fn render_table(r: &ExperimentResult) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{}", r.title);
    let _ = writeln!(out, "{}", "=".repeat(r.title.len().min(78)));
    let _ = writeln!(out, "paper: {}", r.paper_claim);
    let _ = writeln!(out);

    match r.kind {
        ExperimentKind::Table => {
            let _ = write!(out, "{:<14}", "Benchmark");
            for w in &r.workers {
                let _ = write!(out, "{:>26}", format!("{w} worker(s)"));
            }
            let _ = writeln!(out);
            for b in r.benchmarks() {
                let _ = write!(out, "{:<14}", b);
                for c in r.row(&b) {
                    let cell = format!("{}/{} ({:+.0}%)", c.unopt, c.opt, c.improvement);
                    let _ = write!(out, "{cell:>26}");
                }
                let _ = writeln!(out);
            }
        }
        ExperimentKind::Curves => {
            // one block per benchmark: workers, unopt time, opt time,
            // speedups relative to the 1-worker unoptimized time
            for b in r.benchmarks() {
                let cells = r.row(&b);
                let base_unopt = cells.first().map(|c| c.unopt).unwrap_or(1);
                let base_opt = cells.first().map(|c| c.opt).unwrap_or(1);
                let _ = writeln!(out, "{b}:");
                let _ = writeln!(
                    out,
                    "  {:>8} {:>12} {:>12} {:>10} {:>10}",
                    "workers", "t_unopt", "t_opt", "su_unopt", "su_opt"
                );
                for c in cells {
                    let _ = writeln!(
                        out,
                        "  {:>8} {:>12} {:>12} {:>10.2} {:>10.2}",
                        c.workers,
                        c.unopt,
                        c.opt,
                        base_unopt as f64 / c.unopt as f64,
                        base_opt as f64 / c.opt as f64,
                    );
                }
                let _ = writeln!(out);
            }
        }
        ExperimentKind::Overhead => {
            let _ = writeln!(
                out,
                "{:<14} {:>12} {:>12} {:>12} {:>12} {:>12}",
                "Benchmark", "sequential", "par-unopt", "par-opt", "ovh-unopt%", "ovh-opt%"
            );
            for b in r.benchmarks() {
                for c in r.row(&b) {
                    let seq = c.sequential.unwrap_or(0) as f64;
                    let ovh_unopt = 100.0 * (c.unopt as f64 - seq) / seq;
                    let ovh_opt = 100.0 * (c.opt as f64 - seq) / seq;
                    let _ = writeln!(
                        out,
                        "{:<14} {:>12} {:>12} {:>12} {:>11.1}% {:>11.1}%",
                        b, seq as u64, c.unopt, c.opt, ovh_unopt, ovh_opt
                    );
                }
            }
        }
    }
    let _ = writeln!(out);
    let _ = writeln!(out, "mechanism counters (optimized runs):");
    for b in r.benchmarks() {
        if let Some(c) = r.row(&b).last() {
            let _ = writeln!(
                out,
                "  {:<14} lpco-merged={} frames={} markers={} (elided {}) \
                 pdo={} lao-reused={} published={} visits={}",
                b,
                c.opt_stats.slots_merged_lpco,
                c.opt_stats.parcall_frames,
                c.opt_stats.markers_allocated,
                c.opt_stats.markers_elided_spo,
                c.opt_stats.pdo_merges,
                c.opt_stats.cp_reused_lao,
                c.opt_stats.nodes_published,
                c.opt_stats.tree_visits,
            );
        }
    }
    out
}

/// Machine-readable CSV (one row per cell).
pub fn render_csv(r: &ExperimentResult) -> String {
    let mut out = String::from(
        "experiment,benchmark,workers,unopt_time,opt_time,improvement_pct,\
         sequential_time,markers_unopt,markers_opt,markers_elided,\
         frames_unopt,frames_opt,lpco_merged,pdo_merges,lao_reused,\
         published_unopt,published_opt,visits_unopt,visits_opt\n",
    );
    for c in &r.cells {
        let _ = writeln!(
            out,
            "{},{},{},{},{},{:.2},{},{},{},{},{},{},{},{},{},{},{},{},{}",
            r.id,
            c.benchmark,
            c.workers,
            c.unopt,
            c.opt,
            c.improvement,
            c.sequential.map_or(String::new(), |s| s.to_string()),
            c.unopt_stats.markers_allocated,
            c.opt_stats.markers_allocated,
            c.opt_stats.markers_elided_spo,
            c.unopt_stats.parcall_frames,
            c.opt_stats.parcall_frames,
            c.opt_stats.slots_merged_lpco,
            c.opt_stats.pdo_merges,
            c.opt_stats.cp_reused_lao,
            c.unopt_stats.nodes_published,
            c.opt_stats.nodes_published,
            c.unopt_stats.tree_visits,
            c.opt_stats.tree_visits,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::experiment;
    use crate::runner::run_experiment;

    #[test]
    fn render_quick_table() {
        let mut exp = experiment("table1").unwrap();
        exp.benchmarks.truncate(1);
        exp.workers = vec![1, 2];
        let r = run_experiment(&exp, true).unwrap();
        let txt = render_table(&r);
        assert!(txt.contains("map2"));
        assert!(txt.contains("worker(s)"));
        let csv = render_csv(&r);
        assert_eq!(csv.lines().count(), 1 + r.cells.len());
    }

    #[test]
    fn render_quick_curves() {
        let mut exp = experiment("fig8").unwrap();
        exp.benchmarks.truncate(1);
        exp.workers = vec![1, 2];
        let r = run_experiment(&exp, true).unwrap();
        let txt = render_table(&r);
        assert!(txt.contains("su_opt"));
    }
}
