//! Experiment execution: run benchmark × workers × {unopt, opt} cells.

use ace_core::{Ace, Mode, RunReport};
use ace_runtime::{EngineConfig, OptFlags};

use crate::experiments::{Experiment, ExperimentKind};

/// One measured cell of a table/figure.
#[derive(Debug, Clone)]
pub struct CellResult {
    pub benchmark: String,
    pub workers: usize,
    /// Virtual time, unoptimized engine.
    pub unopt: u64,
    /// Virtual time, optimized engine.
    pub opt: u64,
    /// `(unopt - opt) / unopt`, in percent (paper convention).
    pub improvement: f64,
    /// Sequential-baseline virtual time (overhead experiment only).
    pub sequential: Option<u64>,
    /// Mechanism counters of the optimized run, for the "why" columns.
    pub opt_stats: ace_runtime::Stats,
    pub unopt_stats: ace_runtime::Stats,
}

/// A fully executed experiment.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    pub id: String,
    pub title: String,
    pub kind: ExperimentKind,
    pub workers: Vec<usize>,
    pub cells: Vec<CellResult>,
    pub paper_claim: String,
}

fn cfg_for(
    b: &ace_programs::Benchmark,
    workers: usize,
    opts: OptFlags,
    sched: ace_runtime::OrScheduler,
) -> EngineConfig {
    let mut c = EngineConfig::default()
        .with_workers(workers)
        .with_opts(opts)
        .with_or_scheduler(sched);
    c.max_solutions = if b.all_solutions { None } else { Some(1) };
    c
}

fn run_one(
    ace: &Ace,
    b: &ace_programs::Benchmark,
    query: &str,
    workers: usize,
    opts: OptFlags,
    sched: ace_runtime::OrScheduler,
) -> Result<RunReport, String> {
    ace.run(b.mode, query, &cfg_for(b, workers, opts, sched))
}

/// Execute `exp`, optionally scaling sizes down (`quick`).
pub fn run_experiment(exp: &Experiment, quick: bool) -> Result<ExperimentResult, String> {
    let mut cells = Vec::new();
    for &(name, size) in &exp.benchmarks {
        let b = ace_programs::benchmark(name).ok_or_else(|| format!("unknown benchmark {name}"))?;
        let size = if quick {
            crate::experiments::quick_size(size)
        } else {
            size
        };
        let program = (b.program)(size);
        let query = (b.query)(size);
        let ace = Ace::load(&program)?;

        let sequential = if exp.kind == ExperimentKind::Overhead {
            let mut c = cfg_for(&b, 1, OptFlags::none(), exp.or_scheduler);
            c.max_solutions = if b.all_solutions { None } else { Some(1) };
            Some(ace.run(Mode::Sequential, &query, &c)?.virtual_time)
        } else {
            None
        };

        for &w in &exp.workers {
            let unopt = run_one(&ace, &b, &query, w, exp.base, exp.or_scheduler)
                .map_err(|e| format!("{name} w={w} unopt: {e}"))?;
            let opt = run_one(&ace, &b, &query, w, exp.opt, exp.or_scheduler)
                .map_err(|e| format!("{name} w={w} opt: {e}"))?;
            debug_assert_eq!(
                unopt.solutions.len(),
                opt.solutions.len(),
                "{name} w={w}: optimized run changed the solution count"
            );
            cells.push(CellResult {
                benchmark: name.to_owned(),
                workers: w,
                unopt: unopt.virtual_time,
                opt: opt.virtual_time,
                improvement: unopt.improvement_over(&opt),
                sequential,
                opt_stats: opt.stats,
                unopt_stats: unopt.stats,
            });
        }
    }
    Ok(ExperimentResult {
        id: exp.id.to_owned(),
        title: exp.title.to_owned(),
        kind: exp.kind,
        workers: exp.workers.clone(),
        cells,
        paper_claim: exp.paper_claim.to_owned(),
    })
}

impl ExperimentResult {
    /// Cells of one benchmark, in worker order.
    pub fn row(&self, benchmark: &str) -> Vec<&CellResult> {
        self.cells
            .iter()
            .filter(|c| c.benchmark == benchmark)
            .collect()
    }

    /// Benchmark names in first-appearance order.
    pub fn benchmarks(&self) -> Vec<String> {
        let mut seen = Vec::new();
        for c in &self.cells {
            if !seen.contains(&c.benchmark) {
                seen.push(c.benchmark.clone());
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::experiment;

    #[test]
    fn quick_table1_runs_and_improves() {
        let exp = experiment("table1").unwrap();
        let r = run_experiment(&exp, true).unwrap();
        assert_eq!(r.benchmarks(), vec!["map2", "occur"]);
        assert_eq!(r.cells.len(), 2 * exp.workers.len());
        for c in &r.cells {
            assert!(c.unopt > 0 && c.opt > 0);
        }
    }

    #[test]
    fn quick_overhead_has_sequential_column() {
        let exp = experiment("overhead").unwrap();
        // restrict to two benchmarks for test speed
        let mut exp = exp;
        exp.benchmarks.truncate(2);
        let r = run_experiment(&exp, true).unwrap();
        for c in &r.cells {
            assert!(c.sequential.unwrap() > 0);
        }
    }
}
