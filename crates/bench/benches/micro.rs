//! Criterion micro-benchmarks for the substrate hot paths: unification,
//! term copying, clause instantiation, parsing, and machine resolution.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::sync::Arc;

use ace_logic::copy::copy_term;
use ace_logic::{parse_term, Cell, Database, Heap};
use ace_machine::Solver;
use ace_runtime::CostModel;

fn deep_list(heap: &mut Heap, n: usize) -> Cell {
    let items: Vec<Cell> = (0..n as i64).map(Cell::Int).collect();
    heap.list(&items)
}

fn bench_unify(c: &mut Criterion) {
    c.bench_function("unify/list-100-against-var", |b| {
        let mut heap = Heap::new();
        let l = deep_list(&mut heap, 100);
        b.iter(|| {
            let mark = heap.trail_mark();
            let hmark = heap.heap_mark();
            let v = heap.new_var();
            let r = ace_logic::unify::unify(&mut heap, v, l);
            black_box(&r);
            heap.undo_to(mark);
            heap.truncate_to(hmark);
        });
    });

    c.bench_function("unify/identical-structs", |b| {
        let mut heap = Heap::new();
        let args: Vec<Cell> = (0..20).map(Cell::Int).collect();
        let s1 = heap.new_struct(ace_logic::sym("f"), &args);
        let s2 = heap.new_struct(ace_logic::sym("f"), &args);
        b.iter(|| {
            let r = ace_logic::unify::unify(&mut heap, s1, s2);
            black_box(r)
        });
    });
}

fn bench_copy(c: &mut Criterion) {
    c.bench_function("copy_term/list-200", |b| {
        let mut src = Heap::new();
        let l = deep_list(&mut src, 200);
        b.iter(|| {
            let mut dst = Heap::new();
            black_box(copy_term(&src, l, &mut dst))
        });
    });
}

fn bench_instantiate(c: &mut Criterion) {
    let db =
        Database::load("append([], L, L). append([H|T], L, [H|R]) :- append(T, L, R).").unwrap();
    let pred = db.predicate(ace_logic::sym("append"), 3).unwrap();
    c.bench_function("clause/instantiate-append-2", |b| {
        let mut heap = Heap::new();
        b.iter(|| {
            let hm = heap.heap_mark();
            let r = pred.clauses[1].instantiate(&mut heap);
            black_box(&r);
            heap.truncate_to(hm);
        });
    });
}

fn bench_parse(c: &mut Criterion) {
    c.bench_function("parse/clause", |b| {
        b.iter(|| {
            let mut heap = Heap::new();
            black_box(
                parse_term(
                    &mut heap,
                    "qsort([P|T], S) :- partition(T, P, L, G), \
                     (qsort(L, SL) & qsort(G, SG)), append(SL, [P|SG], S)",
                )
                .unwrap(),
            )
        });
    });
}

fn bench_machine(c: &mut Criterion) {
    let db = Arc::new(
        Database::load(
            r#"
            nrev([], []).
            nrev([H|T], R) :- nrev(T, RT), append(RT, [H], R).
            append([], L, L).
            append([H|T], L, [H|R]) :- append(T, L, R).
            "#,
        )
        .unwrap(),
    );
    c.bench_function("machine/nrev-30", |b| {
        let costs = Arc::new(CostModel::default());
        let q = format!(
            "nrev([{}], R)",
            (0..30).map(|i| i.to_string()).collect::<Vec<_>>().join(",")
        );
        b.iter(|| {
            let mut s = Solver::new(db.clone(), costs.clone(), &q).unwrap();
            black_box(s.next_solution().unwrap())
        });
    });
}

criterion_group!(
    name = micro;
    config = Criterion::default().sample_size(20);
    targets = bench_unify, bench_copy, bench_instantiate, bench_parse,
              bench_machine
);
criterion_main!(micro);
