//! Criterion wrappers over the paper experiments: one bench per table and
//! figure, at reduced (quick) sizes so `cargo bench` finishes promptly.
//! The authoritative full-size reproduction is the `tables` binary; these
//! benches wall-clock the same code paths and guard against performance
//! regressions of the engines themselves.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use ace_bench::{experiments, run_experiment};

fn bench_paper_experiments(c: &mut Criterion) {
    for exp in experiments() {
        // keep the bench matrix small: two benchmarks, two worker counts
        let mut exp = exp;
        exp.benchmarks.truncate(2);
        exp.workers = match exp.workers.len() {
            0..=2 => exp.workers,
            _ => vec![exp.workers[0], *exp.workers.last().unwrap()],
        };
        let id = exp.id;
        c.bench_function(&format!("paper/{id}"), move |b| {
            b.iter(|| black_box(run_experiment(&exp, true).unwrap()));
        });
    }
}

criterion_group!(
    name = paper;
    config = Criterion::default().sample_size(10);
    targets = bench_paper_experiments
);
criterion_main!(paper);
