//! The fault matrix: corpus queries × all 16 optimization combinations ×
//! seeded fault plans, under both drivers. Every cell must end in one of
//! exactly two ways — the oracle solution multiset, or a clean structured
//! error that `Ace::run_query` then recovers from sequentially. Never a
//! hang, never a panic escaping the driver, never a wrong answer.

use std::time::Duration;

use ace_core::{Ace, AceError, Mode, RunReport};
use ace_runtime::{
    DriverKind, EngineConfig, FaultKind, FaultPlan, OptFlags, TraceChecker, TraceConfig,
};

const WORKERS: usize = 3;

fn cfg(opts: OptFlags, driver: DriverKind, plan: FaultPlan) -> EngineConfig {
    EngineConfig::default()
        .with_workers(WORKERS)
        .with_opts(opts)
        .with_driver(driver)
        .with_threads_deadline(Some(Duration::from_secs(20)))
        .with_fault_plan(plan)
        .with_trace(TraceConfig::enabled())
        .all_solutions()
}

/// Every surviving traced run must satisfy the scheduler/fault
/// invariants — in particular, every fault injection the trace records
/// must be matched by a recovery record.
fn check_trace(r: &RunReport, label: &str) {
    let trace = r.trace.as_ref().expect("tracing enabled but trace missing");
    if let Err(violations) = TraceChecker::check(trace) {
        panic!("{label}: trace invariant violations: {violations:#?}");
    }
}

/// And-parallel corpus cell: a full cross product with arithmetic, whose
/// solution *order* is fixed (outside backtracking enumerates slots
/// right-to-left), so faults must not even reorder answers.
const AND_PROG: &str = r#"
    c(1). c(2). c(3).
    count(N) :- (c(A) & c(B)), N is A * 10 + B.
"#;
const AND_QUERY: &str = "count(N)";

fn and_oracle() -> Vec<String> {
    let mut v = Vec::new();
    for a in 1..=3 {
        for b in 1..=3 {
            v.push(format!("N={}", a * 10 + b));
        }
    }
    v
}

/// Or-parallel corpus cell: deep `member/2` backtracking. Solution order
/// across workers is scheduling-dependent — compare as multisets.
const OR_PROG: &str = r#"
    member(X, [X|_]).
    member(X, [_|T]) :- member(X, T).
"#;
const OR_QUERY: &str = "member(X, [1,2,3,4,5,6,7,8])";

fn or_oracle() -> Vec<String> {
    (1..=8).map(|i| format!("X={i}")).collect()
}

fn sorted(mut v: Vec<String>) -> Vec<String> {
    v.sort();
    v
}

/// Transient faults (failed steals, failed publications, stalls) must be
/// absorbed: same answers, same order (and-engine), across all 16
/// optimization combinations under the deterministic driver.
#[test]
fn sim_matrix_transient_faults_preserve_answers() {
    let and_ace = Ace::load(AND_PROG).unwrap();
    let or_ace = Ace::load(OR_PROG).unwrap();
    for opts in OptFlags::all_combinations() {
        for seed in [7u64, 1031, 88_000_001] {
            let plan = FaultPlan::random_transient(seed, WORKERS, 6);
            let c = cfg(opts, DriverKind::Sim, plan.clone());

            let r = and_ace
                .run_query(Mode::AndParallel, AND_QUERY, &c)
                .unwrap_or_else(|e| panic!("and seed={seed} opts={}: {e}", opts.label()));
            assert_eq!(
                r.solutions,
                and_oracle(),
                "and-order seed={seed} opts={}",
                opts.label()
            );
            // Transient plans never kill the run, so whatever fired was
            // absorbed in place — no sequential fallback involved.
            assert!(
                r.recovery.iter().all(|l| !l.contains("fallback")),
                "unexpected fallback: {:?}",
                r.recovery
            );
            check_trace(&r, &format!("and seed={seed} opts={}", opts.label()));

            let r = or_ace
                .run_query(Mode::OrParallel, OR_QUERY, &c)
                .unwrap_or_else(|e| panic!("or seed={seed} opts={}: {e}", opts.label()));
            check_trace(&r, &format!("or seed={seed} opts={}", opts.label()));
            assert_eq!(
                sorted(r.solutions),
                sorted(or_oracle()),
                "or-multiset seed={seed} opts={}",
                opts.label()
            );
        }
    }
}

/// Full-taxonomy seeded plans (possibly containing one fatal event): the
/// facade must always hand back the oracle — directly when the run
/// survives, via the recorded sequential fallback when it is killed.
#[test]
fn sim_matrix_full_taxonomy_recovers() {
    let and_ace = Ace::load(AND_PROG).unwrap();
    let or_ace = Ace::load(OR_PROG).unwrap();
    for opts in OptFlags::all_combinations() {
        for seed in [3u64, 5_551_212] {
            let plan = FaultPlan::random(seed, WORKERS, 8);
            let c = cfg(opts, DriverKind::Sim, plan);

            let r = and_ace
                .run_query(Mode::AndParallel, AND_QUERY, &c)
                .unwrap_or_else(|e| panic!("and seed={seed} opts={}: {e}", opts.label()));
            assert_eq!(
                r.solutions,
                and_oracle(),
                "seed={seed} opts={}",
                opts.label()
            );
            check_trace(&r, &format!("and seed={seed} opts={}", opts.label()));

            let r = or_ace
                .run_query(Mode::OrParallel, OR_QUERY, &c)
                .unwrap_or_else(|e| panic!("or seed={seed} opts={}: {e}", opts.label()));
            check_trace(&r, &format!("or seed={seed} opts={}", opts.label()));
            assert_eq!(
                sorted(r.solutions),
                sorted(or_oracle()),
                "seed={seed} opts={}",
                opts.label()
            );
        }
    }
}

/// The same matrix on real threads (reduced: the two extreme optimization
/// sets, transient and full-taxonomy seeds).
#[test]
fn threads_matrix_recovers() {
    let and_ace = Ace::load(AND_PROG).unwrap();
    let or_ace = Ace::load(OR_PROG).unwrap();
    for opts in [OptFlags::none(), OptFlags::all()] {
        for (seed, transient) in [(11u64, true), (12, true), (13, false), (14, false)] {
            let plan = if transient {
                FaultPlan::random_transient(seed, WORKERS, 5)
            } else {
                FaultPlan::random(seed, WORKERS, 6)
            };
            let c = cfg(opts, DriverKind::Threads, plan);

            let r = and_ace
                .run_query(Mode::AndParallel, AND_QUERY, &c)
                .unwrap_or_else(|e| panic!("and seed={seed} opts={}: {e}", opts.label()));
            assert_eq!(
                r.solutions,
                and_oracle(),
                "seed={seed} opts={}",
                opts.label()
            );
            check_trace(&r, &format!("threads and seed={seed} {}", opts.label()));

            let r = or_ace
                .run_query(Mode::OrParallel, OR_QUERY, &c)
                .unwrap_or_else(|e| panic!("or seed={seed} opts={}: {e}", opts.label()));
            check_trace(&r, &format!("threads or seed={seed} {}", opts.label()));
            assert_eq!(
                sorted(r.solutions),
                sorted(or_oracle()),
                "seed={seed} opts={}",
                opts.label()
            );
        }
    }
}

/// A guaranteed worker death under the threads driver: the strict API
/// reports a structured worker-panic error (process stays alive), and the
/// degradation API then produces the oracle with the recovery on record.
#[test]
fn injected_death_is_structured_then_recovers() {
    let ace = Ace::load(AND_PROG).unwrap();
    for driver in [DriverKind::Sim, DriverKind::Threads] {
        let plan = FaultPlan::new(0).with(0, 2, FaultKind::Die);
        let c = cfg(OptFlags::all(), driver, plan);

        // Strict path: a structured error, not a crash.
        let err = ace
            .run_strict(Mode::AndParallel, AND_QUERY, &c)
            .expect_err("a dead worker must fail the strict run")
            .to_string();
        assert!(err.starts_with("worker panic:"), "driver={driver:?}: {err}");
        assert!(err.contains("injected worker death"), "{err}");

        // Degradation path: same query, same config, oracle answers.
        let r = ace.run_query(Mode::AndParallel, AND_QUERY, &c).unwrap();
        assert_eq!(r.solutions, and_oracle(), "driver={driver:?}");
        assert!(
            r.recovery.iter().any(|l| l.contains("sequential fallback")),
            "recovery must be recorded: {:?}",
            r.recovery
        );
        // The fallback trace records the degradation itself.
        let trace = r.trace.as_ref().expect("fallback must carry a trace");
        assert!(
            trace.events.iter().any(|e| e.kind.name() == "degraded"),
            "degradation must be traced"
        );
        check_trace(&r, &format!("death fallback driver={driver:?}"));
    }
}

/// Forced cancellation: surfaces as `AceError::FaultInjected` on the
/// structured API and recovers the same way.
#[test]
fn injected_cancellation_is_classified_and_recovers() {
    let ace = Ace::load(OR_PROG).unwrap();
    for driver in [DriverKind::Sim, DriverKind::Threads] {
        let plan = FaultPlan::new(0).with(1, 1, FaultKind::Cancel);
        let c = cfg(OptFlags::lao_only(), driver, plan);

        // Exercise the classifier through a direct (non-degrading) run.
        // Under real threads worker 0 may finish the whole query before
        // worker 1's event fires — a clean completion is also acceptable
        // there; the sim schedule fires the event deterministically.
        let engine = ace_or::OrEngine::new(ace.db().clone());
        match engine.run(OR_QUERY, &c) {
            Err(err) => {
                let classified = AceError::classify(err);
                assert!(
                    matches!(classified, AceError::FaultInjected(_)),
                    "driver={driver:?}: {classified:?}"
                );
                assert!(classified.is_recoverable());
            }
            Ok(r) => {
                assert_eq!(
                    driver,
                    DriverKind::Threads,
                    "sim must fire the injected cancellation"
                );
                let rendered = sorted(r.solutions);
                assert_eq!(rendered, sorted(or_oracle()));
            }
        }

        let r = ace.run_query(Mode::OrParallel, OR_QUERY, &c).unwrap();
        check_trace(&r, &format!("cancel recovery driver={driver:?}"));
        assert_eq!(
            sorted(r.solutions),
            sorted(or_oracle()),
            "driver={driver:?}"
        );
    }
}

/// Nightly sweep: when `FAULT_MATRIX_SEED` is set (CI rotates it with the
/// date), run extra full-taxonomy plans derived from it so schedules no
/// checked-in seed covers get probed continuously. A reported failure is
/// replayed locally with the same variable. No-op when the variable is
/// absent.
#[test]
fn rotating_seed_sweep() {
    let Ok(raw) = std::env::var("FAULT_MATRIX_SEED") else {
        return;
    };
    let base: u64 = raw
        .trim()
        .parse()
        .expect("FAULT_MATRIX_SEED must be an unsigned integer");
    let and_ace = Ace::load(AND_PROG).unwrap();
    let or_ace = Ace::load(OR_PROG).unwrap();
    for i in 0..8u64 {
        let seed = base.wrapping_mul(1000).wrapping_add(i);
        let plan = FaultPlan::random(seed, WORKERS, 8);
        for driver in [DriverKind::Sim, DriverKind::Threads] {
            let c = cfg(OptFlags::all(), driver, plan.clone());
            let r = and_ace
                .run_query(Mode::AndParallel, AND_QUERY, &c)
                .unwrap_or_else(|e| panic!("and seed={seed} {driver:?}: {e}"));
            assert_eq!(r.solutions, and_oracle(), "seed={seed} {driver:?}");
            check_trace(&r, &format!("sweep and seed={seed} {driver:?}"));
            let r = or_ace
                .run_query(Mode::OrParallel, OR_QUERY, &c)
                .unwrap_or_else(|e| panic!("or seed={seed} {driver:?}: {e}"));
            check_trace(&r, &format!("sweep or seed={seed} {driver:?}"));
            assert_eq!(
                sorted(r.solutions),
                sorted(or_oracle()),
                "seed={seed} {driver:?}"
            );
        }
    }
}

/// Faults against a warm answer table: memoized replays must not lose or
/// duplicate answers under injected steal/publish failures, stalls, or a
/// guaranteed worker death — every cell stays multiset-equal to the
/// memo-off oracle, cold table and warm table alike.
#[test]
fn memo_enabled_matrix_preserves_answers() {
    use ace_runtime::{MemoConfig, MemoTable};
    use std::sync::Arc;

    // Structurally indexed so the table really fills: each and-slot / each
    // or-branch repeats the same deterministic nrev cell.
    let prog = r#"
        append([], L, L).
        append([H|T], L, [H|R]) :- append(T, L, R).
        nrev([], []).
        nrev([H|T], R) :- nrev(T, RT), append(RT, [H], R).
        cell(R) :- nrev([1,2,3,4,5,6], R).
        member(X, [X|_]).
        member(X, [_|T]) :- member(X, T).
        both(A, B) :- cell(A) & cell(B).
    "#;
    let ace = Ace::load(prog).unwrap();
    let and_query = "both(A, B)";
    let or_query = "member(V, [1,2,3]), cell(R)";

    let quiet = cfg(OptFlags::all(), DriverKind::Sim, FaultPlan::new(0));
    let and_oracle = ace.run(Mode::AndParallel, and_query, &quiet).unwrap();
    let or_oracle = ace.run(Mode::OrParallel, or_query, &quiet).unwrap();

    // Warm the shared table with one undisturbed memo run per engine.
    let table = Arc::new(MemoTable::new(&MemoConfig::enabled()));
    let warmup = quiet.clone().with_memo_table(table.clone());
    ace.run(Mode::AndParallel, and_query, &warmup).unwrap();
    ace.run(Mode::OrParallel, or_query, &warmup).unwrap();
    assert!(table.counters().stores > 0, "warmup never filled the table");

    let mut plans: Vec<(String, FaultPlan)> =
        vec![("death".into(), FaultPlan::new(0).with(0, 2, FaultKind::Die))];
    for seed in [21u64, 4242] {
        plans.push((
            format!("transient seed={seed}"),
            FaultPlan::random_transient(seed, WORKERS, 6),
        ));
        plans.push((
            format!("taxonomy seed={seed}"),
            FaultPlan::random(seed, WORKERS, 8),
        ));
    }
    for (label, plan) in &plans {
        for memo in [None, Some(&table)] {
            let mut c = cfg(OptFlags::all(), DriverKind::Sim, plan.clone());
            if let Some(t) = memo {
                c = c.with_memo_table((*t).clone());
            }
            let tag = |engine: &str| {
                format!(
                    "{engine} {label} memo={}",
                    if memo.is_some() { "warm" } else { "off" }
                )
            };

            let r = ace
                .run_query(Mode::AndParallel, and_query, &c)
                .unwrap_or_else(|e| panic!("{}: {e}", tag("and")));
            assert_eq!(r.solutions, and_oracle.solutions, "{}", tag("and"));
            check_trace(&r, &tag("and"));

            let r = ace
                .run_query(Mode::OrParallel, or_query, &c)
                .unwrap_or_else(|e| panic!("{}: {e}", tag("or")));
            assert_eq!(
                sorted(r.solutions.clone()),
                sorted(or_oracle.solutions.clone()),
                "{}",
                tag("or")
            );
            check_trace(&r, &tag("or"));
        }
    }
}

/// Faults across the tabling suspend→resume window: a left-recursive
/// tabled query spends most of its run suspended on its own fixpoint, so
/// sweeping `Die` and `Stall` injection points across both drivers lands
/// faults before the first answer, between suspension and resumption,
/// and during completion. Every cell must hand back the sequential
/// tabled oracle's exact answer set (directly, or via the recorded
/// sequential fallback) and must never deliver a duplicate — cold table
/// and warm shared table alike.
#[test]
fn tabling_matrix_preserves_answer_sets_across_suspend_resume() {
    use ace_runtime::{TableConfig, TableSpace};
    use std::sync::Arc;

    let prog = r#"
        :- table(path/2).
        path(X, Y) :- path(X, Z), edge(Z, Y).
        path(X, Y) :- edge(X, Y).
        edge(a, b).
        edge(b, c).
        edge(b, d).
        edge(c, a).
    "#;
    let ace = Ace::load(prog).unwrap();
    let query = "path(a, X)";
    let space = || Arc::new(TableSpace::new(&TableConfig::enabled()));

    // The oracle is the undisturbed sequential tabled run (the untabled
    // program does not terminate).
    let quiet = cfg(OptFlags::all(), DriverKind::Sim, FaultPlan::new(0)).with_table_space(space());
    let oracle = sorted(ace.run(Mode::Sequential, query, &quiet).unwrap().solutions);
    assert_eq!(oracle, vec!["X=a", "X=b", "X=c", "X=d"]);

    // A warm shared table, filled by one undisturbed run.
    let warm_table = space();
    ace.run(
        Mode::Sequential,
        query,
        &quiet.clone().with_table_space(warm_table.clone()),
    )
    .unwrap();
    assert!(warm_table.complete_len() >= 1, "warmup never completed");

    for driver in [DriverKind::Sim, DriverKind::Threads] {
        for victim in [0usize, 1] {
            for at_op in [1u64, 2, 3, 5, 8] {
                for kind in [FaultKind::Die, FaultKind::Stall { cost: 250 }] {
                    let plan = FaultPlan::new(0).with(victim, at_op, kind);
                    for (round, table) in [("cold", space()), ("warm", warm_table.clone())] {
                        let tag = format!(
                            "tabling {driver:?} victim={victim} at_op={at_op} \
                             {kind:?} {round}"
                        );
                        let c = cfg(OptFlags::all(), driver, plan.clone()).with_table_space(table);
                        let r = ace
                            .run_query(Mode::OrParallel, query, &c)
                            .unwrap_or_else(|e| panic!("{tag}: {e}"));
                        // Exact set, and never a duplicate: elimination
                        // happens at answer insertion, before any
                        // consumer — faulty schedules included.
                        assert_eq!(sorted(r.solutions.clone()), oracle, "{tag}");
                        check_trace(&r, &tag);
                    }
                }
            }
        }
    }
}

/// Program errors must never be masked by the degradation path: the error
/// is the answer, under every driver, with or without faults in the plan.
#[test]
fn program_errors_still_surface_through_run_query() {
    let ace = Ace::load("boom(X) :- Y is X + foo, Y > 0.").unwrap();
    for driver in [DriverKind::Sim, DriverKind::Threads] {
        let plan = FaultPlan::random_transient(99, WORKERS, 4);
        let c = cfg(OptFlags::none(), driver, plan);
        let err = ace
            .run_query(Mode::AndParallel, "boom(1)", &c)
            .expect_err("type errors are not recoverable");
        assert!(
            matches!(err, AceError::Program(_)),
            "driver={driver:?}: {err:?}"
        );
    }
}

/// Worker death inside the deferral window: with procrastinated capture,
/// a published node can sit with its closure still deferred — remotes may
/// even have raised demand (`RemoteClaim::Pending`) — when the victim
/// dies. Sweeping the death point across early phase checkpoints lands
/// kills before publication, between defer and materialization, and
/// after installs have begun. Every cell must still hand back the oracle
/// multiset (directly or via the recorded sequential fallback), and every
/// surviving trace must pass the checker, including the
/// no-install-before-materialization rule.
#[test]
fn death_in_defer_window_recovers() {
    let ace = Ace::load(OR_PROG).unwrap();
    for driver in [DriverKind::Sim, DriverKind::Threads] {
        for victim in [0usize, 1] {
            for at_op in [1u64, 2, 3, 5, 8] {
                let plan = FaultPlan::new(0).with(victim, at_op, FaultKind::Die);
                let c = cfg(OptFlags::all(), driver, plan);
                let tag =
                    format!("defer-window death driver={driver:?} victim={victim} at_op={at_op}");
                let r = ace
                    .run_query(Mode::OrParallel, OR_QUERY, &c)
                    .unwrap_or_else(|e| panic!("{tag}: {e}"));
                assert_eq!(sorted(r.solutions.clone()), sorted(or_oracle()), "{tag}");
                check_trace(&r, &tag);
            }
        }
    }
}

/// Serving-layer matrix cell: seeded `Die`/`Stall` faults inside the
/// session dispatch window, crossed with both drivers on the engine side.
/// The hit sessions degrade (with the recovery on record) and still
/// deliver the exact oracle; unaffected sessions complete normally; the
/// fleet survives the whole round.
#[test]
fn dispatch_window_faults_degrade_only_the_hit_sessions() {
    use ace_server::{QueryRequest, Serve, ServerConfig, SessionEnd};

    let ace = Ace::load(AND_PROG).unwrap();
    let oracle = and_oracle();
    for driver in [DriverKind::Sim, DriverKind::Threads] {
        let plan =
            FaultPlan::new(7)
                .with(0, 1, FaultKind::Die)
                .with(1, 2, FaultKind::Stall { cost: 300 });
        let server = ace.serve(
            ServerConfig::default()
                .with_fleet(2)
                .with_max_in_flight(16)
                .with_fault_plan(plan),
        );
        let handles: Vec<_> = (0..6)
            .map(|_| {
                server
                    .submit(QueryRequest::new(
                        Mode::AndParallel,
                        AND_QUERY,
                        cfg(OptFlags::all(), driver, FaultPlan::new(0)),
                    ))
                    .unwrap()
            })
            .collect();
        let (mut degraded, mut completed) = (0usize, 0usize);
        for h in &handles {
            let (answers, outcome) = h.drain();
            assert_eq!(
                answers, oracle,
                "driver={driver:?}: wrong or missing answers"
            );
            match &outcome.end {
                SessionEnd::Degraded => {
                    degraded += 1;
                    let report = outcome.report.as_ref().expect("degraded report");
                    assert!(
                        report
                            .recovery
                            .iter()
                            .any(|l| l.contains("sequential replay")),
                        "driver={driver:?}: degraded session lacks a recovery record: {:?}",
                        report.recovery
                    );
                }
                SessionEnd::Completed => completed += 1,
                other => panic!("driver={driver:?}: unexpected session end {other:?}"),
            }
        }
        assert!(
            degraded >= 1,
            "driver={driver:?}: the Die must hit a session"
        );
        assert_eq!(degraded + completed, 6, "driver={driver:?}");
        server.shutdown();
    }
}
