//! Memoization equivalence: the answer table must be invisible in the
//! answers.
//!
//! * **Corpus invariance** — across the benchmark corpus, memo-on runs
//!   (cold table and warm table alike) produce exactly the memo-off
//!   answers, on both engines, with every trace satisfying the checker's
//!   memo invariant (no hit before a store of the same key epoch).
//! * **Combination matrix** — memo × or-scheduler × optimization flags:
//!   every cell is multiset-equal to the memo-off oracle.
//! * **Zero-cost opt-out** — a config carrying a *disabled* `MemoConfig`
//!   is bit-identical (virtual time and full stats sheet) to one that
//!   never mentioned memoization.

use std::sync::Arc;

use ace_core::{Ace, Mode, RunReport};
use ace_runtime::{
    EngineConfig, MemoConfig, MemoTable, OptFlags, OrScheduler, TraceChecker, TraceConfig,
};

fn sorted(mut v: Vec<String>) -> Vec<String> {
    v.sort();
    v
}

fn cfg(workers: usize, opts: OptFlags) -> EngineConfig {
    EngineConfig::default()
        .with_workers(workers)
        .with_opts(opts)
        .with_trace(TraceConfig::enabled())
        .all_solutions()
}

fn check_trace(r: &RunReport, label: &str) {
    let trace = r.trace.as_ref().expect("tracing enabled but trace missing");
    if let Err(violations) = TraceChecker::check(trace) {
        panic!("{label}: trace invariant violations: {violations:#?}");
    }
}

/// Compare a memo run against the oracle: answer *order* is part of the
/// and-engine's contract; or-parallel discovery order is scheduling
/// noise, so those compare as multisets.
fn assert_same_answers(mode: Mode, got: &RunReport, expected: &[String], label: &str) {
    match mode {
        Mode::OrParallel => assert_eq!(
            sorted(got.solutions.clone()),
            sorted(expected.to_vec()),
            "{label}"
        ),
        _ => assert_eq!(got.solutions, expected, "{label}"),
    }
}

#[test]
fn corpus_answers_invariant_under_memo() {
    for name in [
        "map1",
        "hanoi",
        "quick_sort",
        "matrix",
        "queen1",
        "members",
        "ancestors",
    ] {
        let b = ace_programs::benchmark(name).unwrap();
        let ace = Ace::load(&(b.program)(b.test_size)).unwrap();
        let query = (b.query)(b.test_size);

        let mut base = cfg(4, OptFlags::all());
        base.max_solutions = if b.all_solutions { None } else { Some(1) };
        let oracle = ace.run(b.mode, &query, &base).unwrap();
        check_trace(&oracle, &format!("{name} memo-off"));

        let table = Arc::new(MemoTable::new(&MemoConfig::enabled()));
        let memo_cfg = base.clone().with_memo_table(table.clone());
        for round in ["cold", "warm"] {
            let r = ace.run(b.mode, &query, &memo_cfg).unwrap();
            check_trace(&r, &format!("{name} memo {round}"));
            assert_same_answers(b.mode, &r, &oracle.solutions, &format!("{name} {round}"));
        }
    }
}

#[test]
fn memo_by_scheduler_by_optflags_matrix() {
    // Structurally indexed throughout, so the memo table really fills:
    // the or-branches repeat the same deterministic Peano-length subcall.
    let ace = Ace::load(
        r#"
        member(X, [X|_]).
        member(X, [_|T]) :- member(X, T).
        len([], z).
        len([_|T], s(N)) :- len(T, N).
        heavy(R) :- len([a,b,c,d,e,f], R).
        cell(R) :- heavy(R).
        both(A, B) :- cell(A) & cell(B).
        "#,
    )
    .unwrap();
    let or_query = "member(V, [1,2,3,4]), heavy(R)";
    let and_query = "member(V, [1,2]), both(A, B)";

    for opts in OptFlags::all_combinations() {
        // And-engine cell: exact order must survive memoization.
        let and_oracle = ace
            .run(Mode::AndParallel, and_query, &cfg(3, opts))
            .unwrap();
        let table = Arc::new(MemoTable::new(&MemoConfig::enabled()));
        let on = ace
            .run(
                Mode::AndParallel,
                and_query,
                &cfg(3, opts).with_memo_table(table),
            )
            .unwrap();
        check_trace(&on, &format!("and memo opts={}", opts.label()));
        assert_eq!(
            on.solutions,
            and_oracle.solutions,
            "and opts={}",
            opts.label()
        );

        // Or-engine cells: both schedulers, shared warm table per flag set.
        let or_oracle = ace.run(Mode::OrParallel, or_query, &cfg(4, opts)).unwrap();
        let table = Arc::new(MemoTable::new(&MemoConfig::enabled()));
        for sched in [OrScheduler::Pool, OrScheduler::Traversal] {
            let c = cfg(4, opts)
                .with_or_scheduler(sched)
                .with_memo_table(table.clone());
            let on = ace.run(Mode::OrParallel, or_query, &c).unwrap();
            let label = format!("or memo {sched:?} opts={}", opts.label());
            check_trace(&on, &label);
            assert_eq!(
                sorted(on.solutions),
                sorted(or_oracle.solutions.clone()),
                "{label}"
            );
        }
        assert!(table.counters().stores > 0, "opts={}", opts.label());
    }
}

#[test]
fn disabled_memo_config_is_bit_identical() {
    let ace = Ace::load(
        r#"
        member(X, [X|_]).
        member(X, [_|T]) :- member(X, T).
        double(X, Y) :- Y is X * 2.
        pair(A, B) :- double(1, A) & double(2, B).
        "#,
    )
    .unwrap();
    for (mode, query) in [
        (Mode::Sequential, "member(X, [1,2,3]), double(X, Y)"),
        (Mode::AndParallel, "pair(A, B)"),
        (Mode::OrParallel, "member(X, [1,2,3]), double(X, Y)"),
    ] {
        let plain = ace.run(mode, query, &cfg(2, OptFlags::all())).unwrap();
        // `MemoConfig::default()` is disabled: carrying it must change
        // nothing — not one cost unit, not one counter.
        let c = cfg(2, OptFlags::all()).with_memo(MemoConfig::default());
        let off = ace.run(mode, query, &c).unwrap();
        assert_eq!(off.solutions, plain.solutions, "{mode:?}");
        assert_eq!(off.virtual_time, plain.virtual_time, "{mode:?}");
        assert_eq!(off.stats, plain.stats, "{mode:?}");
        assert_eq!(off.stats.memo_hits + off.stats.memo_misses, 0, "{mode:?}");
    }
}

#[test]
fn warm_table_hits_on_the_repeated_workload() {
    let ace = Ace::load(
        r#"
        append([], L, L).
        append([H|T], L, [H|R]) :- append(T, L, R).
        nrev([], []).
        nrev([H|T], R) :- nrev(T, RT), append(RT, [H], R).
        cell(R) :- nrev([1,2,3,4,5,6,7], R).
        run(A, B, C, D) :- cell(A) & cell(B) & cell(C) & cell(D).
        "#,
    )
    .unwrap();
    let q = "run(A, B, C, D)";
    let off = ace
        .run(Mode::AndParallel, q, &cfg(4, OptFlags::all()))
        .unwrap();

    let table = Arc::new(MemoTable::new(&MemoConfig::enabled()));
    let c = cfg(4, OptFlags::all()).with_memo_table(table.clone());
    let cold = ace.run(Mode::AndParallel, q, &c).unwrap();
    let warm = ace.run(Mode::AndParallel, q, &c).unwrap();
    for (label, r) in [("cold", &cold), ("warm", &warm)] {
        check_trace(r, label);
        assert_eq!(r.solutions, off.solutions, "{label}");
    }
    assert!(cold.stats.memo_stores > 0, "{}", cold.summary());
    assert!(
        cold.stats.calls * 2 <= off.stats.calls,
        "cold memo must at least halve executed calls: {} vs {}",
        cold.stats.calls,
        off.stats.calls
    );
    assert_eq!(warm.stats.memo_stores, 0, "{}", warm.summary());
    assert!(warm.stats.memo_hits > 0);
    assert!(warm.virtual_time < cold.virtual_time);
}
