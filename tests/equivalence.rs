//! Cross-engine equivalence: every corpus benchmark must produce exactly
//! the same solutions under the sequential baseline, the and-parallel
//! engine, and the or-parallel engine, for every optimization combination
//! and several worker counts. This is the safety net behind the paper's
//! requirement that optimizations "preserve the operational semantics".

use ace_core::{Ace, Mode};
use ace_runtime::{EngineConfig, OptFlags};

fn cfg(workers: usize, opts: OptFlags, all: bool) -> EngineConfig {
    let mut c = EngineConfig::default()
        .with_workers(workers)
        .with_opts(opts);
    c.max_solutions = if all { None } else { Some(1) };
    c
}

fn sorted(mut v: Vec<String>) -> Vec<String> {
    v.sort();
    v
}

/// Run one benchmark at its test size under every optimization combination
/// and the given worker counts; compare against the sequential oracle.
fn check_benchmark(name: &str, workers: &[usize]) {
    let b = ace_programs::benchmark(name).unwrap();
    let program = (b.program)(b.test_size);
    let query = (b.query)(b.test_size);
    let ace = Ace::load(&program).unwrap();

    let oracle = ace
        .sequential_solutions(&query)
        .unwrap_or_else(|e| panic!("{name}: sequential failed: {e}"));

    for &w in workers {
        for opts in OptFlags::all_combinations() {
            let r = ace
                .run(b.mode, &query, &cfg(w, opts, b.all_solutions))
                .unwrap_or_else(|e| panic!("{name}: {} workers, {}: {e}", w, opts.label()));
            match b.mode {
                Mode::AndParallel if b.all_solutions => {
                    // and-parallel preserves sequential solution order
                    assert_eq!(r.solutions, oracle, "{name} w={w} opts={}", opts.label());
                }
                Mode::AndParallel => {
                    assert_eq!(
                        r.solutions.first(),
                        oracle.first(),
                        "{name} w={w} opts={}",
                        opts.label()
                    );
                }
                Mode::OrParallel => {
                    // or-parallel explores in nondeterministic order
                    if b.all_solutions {
                        assert_eq!(
                            sorted(r.solutions),
                            sorted(oracle.clone()),
                            "{name} w={w} opts={}",
                            opts.label()
                        );
                    } else {
                        assert_eq!(r.solutions.len(), 1.min(oracle.len()));
                    }
                }
                Mode::Sequential => unreachable!(),
            }
        }
    }
}

macro_rules! equivalence_test {
    ($test:ident, $name:literal) => {
        #[test]
        fn $test() {
            check_benchmark($name, &[1, 2, 4]);
        }
    };
}

equivalence_test!(map2_equivalent, "map2");
equivalence_test!(map1_equivalent, "map1");
equivalence_test!(occur_equivalent, "occur");
equivalence_test!(matrix_equivalent, "matrix");
equivalence_test!(matrix_bt_equivalent, "matrix_bt");
equivalence_test!(pderiv_equivalent, "pderiv");
equivalence_test!(pderiv_bt_equivalent, "pderiv_bt");
equivalence_test!(annotator_equivalent, "annotator");
equivalence_test!(annotator_bt_equivalent, "annotator_bt");
equivalence_test!(takeuchi_equivalent, "takeuchi");
equivalence_test!(hanoi_equivalent, "hanoi");
equivalence_test!(bt_cluster_equivalent, "bt_cluster");
equivalence_test!(quick_sort_equivalent, "quick_sort");
equivalence_test!(queen1_equivalent, "queen1");
equivalence_test!(queen2_equivalent, "queen2");
equivalence_test!(puzzle_equivalent, "puzzle");
equivalence_test!(ancestors_equivalent, "ancestors");
equivalence_test!(members_equivalent, "members");
equivalence_test!(maps_equivalent, "maps");

/// The and-parallel engine must also enumerate *all* solutions of a
/// nondeterministic parallel conjunction in sequential order.
#[test]
fn and_parallel_all_solutions_cross_product() {
    let ace = Ace::load(
        r#"
        p(1). p(2). p(3).
        q(a). q(b).
        r(X, Y, Z) :- (p(X) & q(Y) & p(Z)).
        "#,
    )
    .unwrap();
    let oracle = ace.sequential_solutions("r(X, Y, Z)").unwrap();
    assert_eq!(oracle.len(), 18);
    for w in [1, 3] {
        for opts in [OptFlags::none(), OptFlags::all()] {
            let r = ace
                .run(Mode::AndParallel, "r(X, Y, Z)", &cfg(w, opts, true))
                .unwrap();
            assert_eq!(r.solutions, oracle, "w={w} opts={}", opts.label());
        }
    }
}

/// Compiled clause execution (the default everywhere above) must be
/// answer-identical to the tree-walking interpreter oracle — sequentially
/// and under both parallel engines up to 8 workers.
#[test]
fn compiled_matches_interpreter_oracle() {
    use ace_runtime::ClauseExec;
    for name in ["maps", "queen1", "pderiv_bt", "quick_sort", "members"] {
        let b = ace_programs::benchmark(name).unwrap();
        let ace = Ace::load(&(b.program)(b.test_size)).unwrap();
        let query = (b.query)(b.test_size);

        let interp = |w: usize| {
            cfg(w, OptFlags::all(), b.all_solutions).with_clause_exec(ClauseExec::Interpreted)
        };
        let oracle = ace.run(Mode::Sequential, &query, &interp(1)).unwrap();
        let seq = ace
            .run(
                Mode::Sequential,
                &query,
                &cfg(1, OptFlags::all(), b.all_solutions),
            )
            .unwrap();
        assert_eq!(seq.solutions, oracle.solutions, "{name}: sequential");

        for w in [2, 8] {
            let ri = ace.run(b.mode, &query, &interp(w)).unwrap();
            let rc = ace
                .run(b.mode, &query, &cfg(w, OptFlags::all(), b.all_solutions))
                .unwrap();
            match b.mode {
                Mode::AndParallel => {
                    assert_eq!(rc.solutions, ri.solutions, "{name} w={w}: and-parallel")
                }
                _ => assert_eq!(
                    sorted(rc.solutions),
                    sorted(ri.solutions),
                    "{name} w={w}: or-parallel"
                ),
            }
        }
    }
}

/// Threads driver spot check (full matrix is sim-only to keep CI fast).
#[test]
fn threads_driver_spot_check() {
    use ace_runtime::DriverKind;
    let b = ace_programs::benchmark("map2").unwrap();
    let ace = Ace::load(&(b.program)(b.test_size)).unwrap();
    let query = (b.query)(b.test_size);
    let oracle = ace.sequential_solutions(&query).unwrap();
    let mut c = cfg(3, OptFlags::all(), false);
    c.driver = DriverKind::Threads;
    let r = ace.run(Mode::AndParallel, &query, &c).unwrap();
    assert_eq!(r.solutions.first(), oracle.first());

    let b = ace_programs::benchmark("members").unwrap();
    let ace = Ace::load(&(b.program)(b.test_size)).unwrap();
    let query = (b.query)(b.test_size);
    let oracle = sorted(ace.sequential_solutions(&query).unwrap());
    let mut c = cfg(3, OptFlags::lao_only(), true);
    c.driver = DriverKind::Threads;
    let r = ace.run(Mode::OrParallel, &query, &c).unwrap();
    assert_eq!(sorted(r.solutions), oracle);
}
