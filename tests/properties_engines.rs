//! Property-based cross-engine equivalence over randomly generated
//! workloads: the parallel engines must agree with the sequential solver
//! on randomly shaped inputs, not just on the fixed corpus.

use proptest::prelude::*;

use ace_core::{Ace, Mode};
use ace_runtime::{EngineConfig, OptFlags};

fn cfg(workers: usize, opts: OptFlags) -> EngineConfig {
    EngineConfig::default()
        .with_workers(workers)
        .with_opts(opts)
        .all_solutions()
}

fn sorted(mut v: Vec<String>) -> Vec<String> {
    v.sort();
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random nondeterministic parallel conjunction: each subgoal picks
    /// from its own fact set; cross-product enumeration must match the
    /// sequential order exactly, for every optimization set.
    #[test]
    fn random_cross_products(
        sizes in prop::collection::vec(1usize..4, 2..4),
        workers in 1usize..5,
        opt_idx in 0usize..16,
    ) {
        let mut program = String::new();
        let mut goals = Vec::new();
        for (i, &n) in sizes.iter().enumerate() {
            for v in 0..n {
                program.push_str(&format!("p{i}({v}).\n"));
            }
            goals.push(format!("p{i}(X{i})"));
        }
        let query = goals.join(" & ");
        let ace = Ace::load(&program).unwrap();
        let oracle = ace.sequential_solutions(&query).unwrap();
        let opts = OptFlags::all_combinations()[opt_idx];
        let r = ace
            .run(Mode::AndParallel, &query, &cfg(workers, opts))
            .unwrap();
        prop_assert_eq!(r.solutions, oracle);
    }

    /// Random member/filter searches under the or-engine agree with the
    /// sequential solver as multisets, with and without LAO.
    #[test]
    fn random_or_searches(
        items in prop::collection::vec(0i64..20, 1..12),
        modulus in 1i64..5,
        workers in 1usize..5,
        lao in any::<bool>(),
    ) {
        let list = items
            .iter()
            .map(|i| i.to_string())
            .collect::<Vec<_>>()
            .join(",");
        let program = r#"
            member(X, [X|_]).
            member(X, [_|T]) :- member(X, T).
        "#;
        let query = format!(
            "member(X, [{list}]), 0 =:= X mod {modulus}"
        );
        let ace = Ace::load(program).unwrap();
        let oracle = sorted(ace.sequential_solutions(&query).unwrap());
        let opts = if lao { OptFlags::lao_only() } else { OptFlags::none() };
        let r = ace
            .run(Mode::OrParallel, &query, &cfg(workers, opts))
            .unwrap();
        prop_assert_eq!(sorted(r.solutions), oracle);
    }

    /// Random deterministic arithmetic pipelines through nested parallel
    /// conjunctions compute the same value everywhere.
    #[test]
    fn random_parallel_arithmetic(
        xs in prop::collection::vec(0i64..50, 2..8),
        workers in 1usize..5,
    ) {
        let list = xs
            .iter()
            .map(|i| i.to_string())
            .collect::<Vec<_>>()
            .join(",");
        let program = r#"
            sq([], []).
            sq([X|T], [Y|T2]) :- step(X, Y) & sq(T, T2).
            step(X, Y) :- Y is X * X + 1.
            total([], 0).
            total([X|T], S) :- total(T, S1), S is S1 + X.
        "#;
        let query = format!("sq([{list}], Out), total(Out, S)");
        let ace = Ace::load(program).unwrap();
        let oracle = ace.sequential_solutions(&query).unwrap();
        for opts in [OptFlags::none(), OptFlags::all()] {
            let r = ace
                .run(Mode::AndParallel, &query, &cfg(workers, opts))
                .unwrap();
            prop_assert_eq!(&r.solutions, &oracle);
        }
    }
}
