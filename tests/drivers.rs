//! Driver equivalence and determinism:
//!
//! * the **sim driver is bit-deterministic** — identical config ⇒ identical
//!   clocks and solution order, for every benchmark;
//! * the **threads driver** (real OS threads, real synchronization) agrees
//!   with the sim driver's solutions on a representative slice.

use ace_core::Ace;
use ace_runtime::{DriverKind, EngineConfig, OptFlags};

fn cfg(workers: usize, opts: OptFlags, all: bool) -> EngineConfig {
    let mut c = EngineConfig::default()
        .with_workers(workers)
        .with_opts(opts);
    c.max_solutions = if all { None } else { Some(1) };
    c
}

fn sorted(mut v: Vec<String>) -> Vec<String> {
    v.sort();
    v
}

#[test]
fn sim_is_deterministic_for_every_benchmark() {
    for b in ace_programs::all() {
        let ace = Ace::load(&(b.program)(b.test_size)).unwrap();
        let query = (b.query)(b.test_size);
        let c = cfg(3, OptFlags::all(), b.all_solutions);
        let r1 = ace.run(b.mode, &query, &c).unwrap();
        let r2 = ace.run(b.mode, &query, &c).unwrap();
        assert_eq!(
            r1.virtual_time, r2.virtual_time,
            "{}: virtual time must be reproducible",
            b.name
        );
        assert_eq!(r1.clocks, r2.clocks, "{}", b.name);
        assert_eq!(r1.solutions, r2.solutions, "{}", b.name);
    }
}

#[test]
fn threads_driver_agrees_with_sim_for_and_benchmarks() {
    for name in ["map2", "takeuchi", "quick_sort", "map1"] {
        let b = ace_programs::benchmark(name).unwrap();
        let ace = Ace::load(&(b.program)(b.test_size)).unwrap();
        let query = (b.query)(b.test_size);
        let sim = ace
            .run(b.mode, &query, &cfg(3, OptFlags::all(), b.all_solutions))
            .unwrap();
        let mut tc = cfg(3, OptFlags::all(), b.all_solutions);
        tc.driver = DriverKind::Threads;
        let thr = ace.run(b.mode, &query, &tc).unwrap();
        // and-parallel preserves sequential order in both drivers
        assert_eq!(thr.solutions, sim.solutions, "{name}");
    }
}

#[test]
fn threads_driver_agrees_with_sim_for_or_benchmarks() {
    for name in ["queen1", "members", "puzzle"] {
        let b = ace_programs::benchmark(name).unwrap();
        let ace = Ace::load(&(b.program)(b.test_size)).unwrap();
        let query = (b.query)(b.test_size);
        let sim = ace
            .run(b.mode, &query, &cfg(3, OptFlags::lao_only(), true))
            .unwrap();
        let mut tc = cfg(3, OptFlags::lao_only(), true);
        tc.driver = DriverKind::Threads;
        let thr = ace.run(b.mode, &query, &tc).unwrap();
        // or-parallel discovery order is nondeterministic: multisets
        assert_eq!(sorted(thr.solutions), sorted(sim.solutions), "{name}");
    }
}

/// Repeated threads runs (different real interleavings each time) always
/// produce the same solution multiset.
#[test]
fn threads_driver_is_schedule_independent() {
    let b = ace_programs::benchmark("members").unwrap();
    let ace = Ace::load(&(b.program)(8)).unwrap();
    let query = (b.query)(8);
    let mut tc = cfg(4, OptFlags::lao_only(), true);
    tc.driver = DriverKind::Threads;
    let first = sorted(ace.run(b.mode, &query, &tc).unwrap().solutions);
    for _ in 0..5 {
        let again = sorted(ace.run(b.mode, &query, &tc).unwrap().solutions);
        assert_eq!(again, first);
    }
}

/// Worker count never changes the answer set, only the time.
#[test]
fn worker_count_invariance() {
    for name in ["occur", "bt_cluster", "queen2"] {
        let b = ace_programs::benchmark(name).unwrap();
        let ace = Ace::load(&(b.program)(b.test_size)).unwrap();
        let query = (b.query)(b.test_size);
        let baseline = sorted(
            ace.run(b.mode, &query, &cfg(1, OptFlags::all(), b.all_solutions))
                .unwrap()
                .solutions,
        );
        for w in [2, 5, 7, 10] {
            let r = ace
                .run(b.mode, &query, &cfg(w, OptFlags::all(), b.all_solutions))
                .unwrap();
            assert_eq!(sorted(r.solutions), baseline, "{name} w={w}");
        }
    }
}
