//! Scheduler equivalence: the O(1) alternative pool against the
//! traversal oracle.
//!
//! The or-engine's default work-finding path is a sharded alternative
//! pool; the original root-to-leaf traversal survives as
//! `OrScheduler::Traversal` precisely so these tests can hold the pool
//! to it:
//!
//! * **Equivalence** — across the or-corpus, every combination of
//!   scheduler × dispatch order × LAO yields the same solution multiset.
//! * **O(1) steal** — under the pool, `tree_visits` per claimed
//!   alternative stays bounded by a small constant as the `member/2`
//!   chain deepens (LAO off, so the public tree really grows); the
//!   traversal oracle's per-claim cost grows with depth on the same
//!   workload.

use ace_core::{Ace, Mode, RunReport};
use ace_runtime::{
    EngineConfig, OptFlags, OrDispatch, OrScheduler, Topology, TraceChecker, TraceConfig,
};

fn sorted(mut v: Vec<String>) -> Vec<String> {
    v.sort();
    v
}

fn cfg(workers: usize, opts: OptFlags, sched: OrScheduler, dispatch: OrDispatch) -> EngineConfig {
    let mut c = EngineConfig::default()
        .with_workers(workers)
        .with_opts(opts)
        .with_or_scheduler(sched)
        .with_trace(TraceConfig::enabled())
        .all_solutions();
    c.or_dispatch = dispatch;
    c
}

/// Every traced run must satisfy the scheduler invariants (claims follow
/// publications, no alternative claimed twice, pops bounded by pushes).
fn check_trace(r: &RunReport, label: &str) {
    let trace = r.trace.as_ref().expect("tracing enabled but trace missing");
    assert!(!trace.is_empty(), "{label}: traced run recorded no events");
    if let Err(violations) = TraceChecker::check(trace) {
        panic!("{label}: trace invariant violations: {violations:#?}");
    }
}

/// (a) Pool (both dispatch orders, LAO on and off) is multiset-equal to
/// the traversal oracle on the or-corpus, and the pool counters prove
/// which path actually ran.
#[test]
fn pool_matches_traversal_oracle_across_corpus() {
    for name in ["queen1", "members", "ancestors"] {
        let b = ace_programs::benchmark(name).unwrap();
        let ace = Ace::load(&(b.program)(b.test_size)).unwrap();
        let query = (b.query)(b.test_size);
        for opts in [OptFlags::none(), OptFlags::lao_only()] {
            let oracle = ace
                .run(
                    b.mode,
                    &query,
                    &cfg(4, opts, OrScheduler::Traversal, OrDispatch::Deepest),
                )
                .unwrap();
            assert_eq!(
                oracle.stats.pool_pushes, 0,
                "{name}: traversal runs must not touch the pool"
            );
            check_trace(&oracle, &format!("{name} traversal lao={}", opts.lao));
            let expected = sorted(oracle.solutions);
            assert!(!expected.is_empty(), "{name}: oracle found no solutions");

            for dispatch in [OrDispatch::Deepest, OrDispatch::Topmost] {
                let pool = ace
                    .run(b.mode, &query, &cfg(4, opts, OrScheduler::Pool, dispatch))
                    .unwrap();
                check_trace(&pool, &format!("{name} pool {dispatch:?} lao={}", opts.lao));
                assert_eq!(
                    sorted(pool.solutions),
                    expected,
                    "{name} {dispatch:?} lao={}",
                    opts.lao
                );
                assert!(
                    pool.stats.pool_pushes > 0 && pool.stats.pool_pops > 0,
                    "{name} {dispatch:?}: pool scheduler never used the pool"
                );
            }
        }
    }
}

/// (c) Topology equivalence at fleet scale: 64 workers over hierarchical
/// multi-domain topologies — the even 4 x 16 split and an uneven 3-way
/// split (22/22/20) — reproduce the traversal oracle's answer multiset.
/// Every traced run is held to the full `TraceChecker` rule set,
/// including the new one: no cross-domain steal while the thief's own
/// domain still has visible pool entries. Under the deterministic sim
/// driver the hierarchical scan makes eager crosses structurally
/// impossible, so the counter is asserted exactly zero.
#[test]
fn pool_matches_oracle_at_64_workers_across_topologies() {
    for name in ["wide_tree", "members"] {
        let b = ace_programs::benchmark(name).unwrap();
        let ace = Ace::load(&(b.program)(b.test_size)).unwrap();
        let query = (b.query)(b.test_size);
        let oracle = ace
            .run(
                b.mode,
                &query,
                &cfg(
                    4,
                    OptFlags::all(),
                    OrScheduler::Traversal,
                    OrDispatch::Deepest,
                ),
            )
            .unwrap();
        let expected = sorted(oracle.solutions);
        assert!(!expected.is_empty(), "{name}: oracle found no solutions");

        for (label, topo) in [
            ("numa4", Topology::numa(4)),
            ("numa3_uneven", Topology::numa(3)),
        ] {
            let c = cfg(64, OptFlags::all(), OrScheduler::Pool, OrDispatch::Deepest)
                .with_topology(topo);
            let pool = ace.run(b.mode, &query, &c).unwrap();
            check_trace(&pool, &format!("{name} 64w {label}"));
            assert_eq!(sorted(pool.solutions), expected, "{name} 64w {label}");
            assert!(
                pool.stats.steals_local_domain + pool.stats.steals_cross_domain > 0,
                "{name} 64w {label}: no steals were scope-classified"
            );
            assert_eq!(
                pool.stats.steals_cross_eager, 0,
                "{name} 64w {label}: hierarchical scan crossed a domain with \
                 local work still visible"
            );
        }
    }
}

/// (b) Steal cost per claimed alternative: flat under the pool, growing
/// under the traversal oracle, as the member chain deepens with LAO off.
#[test]
fn pool_steal_cost_is_flat_in_chain_depth() {
    let b = ace_programs::benchmark("members").unwrap();
    let run = |n: usize, sched: OrScheduler| {
        let ace = Ace::load(&(b.program)(n)).unwrap();
        let list: Vec<String> = (1..=n).map(|i| i.to_string()).collect();
        // fails at every element: the chain publishes to full depth
        let q = format!("member(X, [{}]), X > 100", list.join(","));
        let r = ace
            .run(
                Mode::OrParallel,
                &q,
                &cfg(4, OptFlags::none(), sched, OrDispatch::Deepest),
            )
            .unwrap();
        check_trace(&r, &format!("members n={n} {sched:?}"));
        assert!(r.solutions.is_empty());
        r.steal_cost_per_claim()
            .expect("4-worker chain run claims alternatives")
    };

    let (shallow, deep) = (run(10, OrScheduler::Pool), run(40, OrScheduler::Pool));
    assert!(
        shallow <= 4.0 && deep <= 4.0,
        "pool steal cost must stay O(1): shallow={shallow:.2} deep={deep:.2}"
    );

    let (t_shallow, t_deep) = (
        run(10, OrScheduler::Traversal),
        run(40, OrScheduler::Traversal),
    );
    assert!(
        t_deep > t_shallow && t_deep > 2.0 * deep,
        "traversal steal cost should grow with depth: {t_shallow:.2} -> {t_deep:.2} (pool {deep:.2})"
    );
}
