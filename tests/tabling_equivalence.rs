//! Tabling equivalence: SLG evaluation must be invisible in the answers.
//!
//! * **Corpus invariance** — every tabled corpus program terminates on
//!   both drivers at 1/2/4/8 workers with exactly the sequential tabled
//!   oracle's answer set (which itself matches the closed-form count),
//!   cold table and warm table alike, with every trace satisfying the
//!   checker's tabling protocol (answers before resumes, completion
//!   exactly once per subgoal).
//! * **Warm tables are pure lookup** — a completed table turns
//!   re-evaluation into replay: no new subgoal frames on any engine.
//! * **Zero-cost opt-out** — a config carrying a *disabled*
//!   `TableConfig` is bit-identical (virtual time and full stats sheet)
//!   to one that never mentioned tabling.

use std::sync::Arc;

use ace_core::{Ace, Mode, RunReport};
use ace_runtime::{
    DriverKind, EngineConfig, OptFlags, TableConfig, TableSpace, TraceChecker, TraceConfig,
};

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn sorted(mut v: Vec<String>) -> Vec<String> {
    v.sort();
    v
}

fn space() -> Arc<TableSpace> {
    Arc::new(TableSpace::new(&TableConfig::enabled().with_shards(8)))
}

fn cfg(workers: usize, driver: DriverKind, table: &Arc<TableSpace>) -> EngineConfig {
    EngineConfig::default()
        .with_workers(workers)
        .with_driver(driver)
        .with_opts(OptFlags::all())
        .with_trace(TraceConfig::enabled())
        .with_table_space(table.clone())
        .all_solutions()
}

fn check_trace(r: &RunReport, label: &str) {
    let trace = r.trace.as_ref().expect("tracing enabled but trace missing");
    if let Err(violations) = TraceChecker::check(trace) {
        panic!("{label}: trace invariant violations: {violations:#?}");
    }
}

fn assert_oracle(r: &RunReport, oracle: &[String], label: &str) {
    assert_eq!(sorted(r.solutions.clone()), oracle, "{label}");
    let mut uniq = r.solutions.clone();
    uniq.sort();
    uniq.dedup();
    assert_eq!(uniq.len(), r.solutions.len(), "{label}: duplicate answers");
}

#[test]
fn tabled_corpus_invariant_across_drivers_and_workers() {
    for p in ace_programs::tabled() {
        let ace = Ace::load(&(p.program)(p.test_size)).unwrap();
        let query = (p.query)(p.test_size);

        let seq_space = space();
        let seq = ace
            .run(
                Mode::Sequential,
                &query,
                &cfg(1, DriverKind::Sim, &seq_space),
            )
            .unwrap_or_else(|e| panic!("{} sequential: {e}", p.name));
        let oracle = sorted(seq.solutions.clone());
        assert_eq!(
            oracle.len(),
            (p.oracle)(p.test_size),
            "{} oracle size",
            p.name
        );

        for driver in [DriverKind::Sim, DriverKind::Threads] {
            for w in WORKER_COUNTS {
                let label = format!("{} {driver:?} workers={w}", p.name);
                let table = space();
                let cold = ace
                    .run(Mode::OrParallel, &query, &cfg(w, driver, &table))
                    .unwrap_or_else(|e| panic!("{label}: {e}"));
                assert_oracle(&cold, &oracle, &format!("{label} cold"));
                check_trace(&cold, &format!("{label} cold"));

                let warm = ace
                    .run(Mode::OrParallel, &query, &cfg(w, driver, &table))
                    .unwrap_or_else(|e| panic!("{label} warm: {e}"));
                assert_oracle(&warm, &oracle, &format!("{label} warm"));
                check_trace(&warm, &format!("{label} warm"));
                assert_eq!(
                    warm.stats.table_subgoals, 0,
                    "{label}: warm run re-framed subgoals"
                );
                assert!(warm.stats.table_hits >= 1, "{label}: warm run missed");
            }
        }
    }
}

#[test]
fn completed_tables_are_shared_across_modes() {
    // One space, three engines: whoever completes the fixpoint first,
    // everyone else replays it.
    let p = ace_programs::tabled_program("tabled_path").unwrap();
    let ace = Ace::load(&(p.program)(p.test_size)).unwrap();
    let query = (p.query)(p.test_size);
    let table = space();

    let seq = ace
        .run(Mode::Sequential, &query, &cfg(1, DriverKind::Sim, &table))
        .unwrap();
    let oracle = sorted(seq.solutions.clone());
    assert!(seq.stats.table_completes >= 1, "{}", seq.summary());

    for mode in [Mode::OrParallel, Mode::AndParallel] {
        let r = ace
            .run(mode, &query, &cfg(4, DriverKind::Sim, &table))
            .unwrap_or_else(|e| panic!("{mode:?}: {e}"));
        assert_oracle(&r, &oracle, &format!("{mode:?} vs sequential"));
        assert_eq!(r.stats.table_subgoals, 0, "{mode:?} re-evaluated");
        assert!(r.stats.table_hits >= 1, "{mode:?} missed the shared table");
    }
}

#[test]
fn disabled_table_config_is_bit_identical() {
    // Tabled-declared but terminating: with no space attached the
    // declaration is inert and the machine must not spend one cost unit
    // on the table path.
    let ace = Ace::load(
        r#"
        :- table(reach/2).
        reach(X, Y) :- edge(X, Y).
        reach(X, Y) :- edge(X, Z), reach(Z, Y).
        edge(a, b).
        edge(b, c).
        pair(A, B) :- reach(a, A) & reach(b, B).
        "#,
    )
    .unwrap();
    for (mode, query) in [
        (Mode::Sequential, "reach(a, X)"),
        (Mode::OrParallel, "reach(a, X)"),
        (Mode::AndParallel, "pair(A, B)"),
    ] {
        let base = EngineConfig::default()
            .with_workers(2)
            .with_opts(OptFlags::all())
            .all_solutions();
        let plain = ace.run(mode, query, &base).unwrap();
        let off = ace
            .run(
                mode,
                query,
                &base.clone().with_table(TableConfig::default()),
            )
            .unwrap();
        assert_eq!(off.solutions, plain.solutions, "{mode:?}");
        assert_eq!(off.virtual_time, plain.virtual_time, "{mode:?}");
        assert_eq!(off.stats, plain.stats, "{mode:?}");
        assert_eq!(off.stats.table_subgoals, 0, "{mode:?}");
    }
}
