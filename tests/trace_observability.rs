//! Observability tier-1: the virtual-time event trace is Perfetto-valid,
//! per-worker monotone, invariant-clean, and free when disabled.
//!
//! * A traced 4-worker or-corpus run yields Chrome `trace_event` JSON
//!   that a JSON parser accepts and whose per-worker timestamps never go
//!   backwards.
//! * [`TraceChecker`] holds on every traced run here.
//! * Disabling tracing allocates no ring buffers and leaves
//!   `virtual_time` bit-for-bit unchanged — tracing charges zero
//!   virtual cost.

use ace_core::{Ace, Mode, RunReport};
use ace_runtime::{EngineConfig, EventKind, OptFlags, TraceChecker, TraceConfig, Tracer};
use ace_server::{QueryRequest, Serve, ServerConfig, SessionEnd};

fn cfg(workers: usize, trace: TraceConfig) -> EngineConfig {
    EngineConfig::default()
        .with_workers(workers)
        .with_opts(OptFlags::all())
        .with_trace(trace)
        .all_solutions()
}

fn traced_or_run(name: &str) -> RunReport {
    let b = ace_programs::benchmark(name).unwrap();
    let ace = Ace::load(&(b.program)(b.test_size)).unwrap();
    ace.run(
        b.mode,
        &(b.query)(b.test_size),
        &cfg(4, TraceConfig::enabled()),
    )
    .unwrap()
}

/// Minimal recursive-descent JSON validator: enough to prove the Chrome
/// export is structurally well-formed (balanced, properly quoted and
/// escaped) without an external parser dependency.
fn validate_json(s: &str) -> Result<(), String> {
    let bytes = s.as_bytes();
    let mut i = 0;
    fn skip_ws(b: &[u8], i: &mut usize) {
        while *i < b.len() && (b[*i] as char).is_ascii_whitespace() {
            *i += 1;
        }
    }
    fn value(b: &[u8], i: &mut usize) -> Result<(), String> {
        skip_ws(b, i);
        match b.get(*i) {
            Some(b'{') => {
                *i += 1;
                skip_ws(b, i);
                if b.get(*i) == Some(&b'}') {
                    *i += 1;
                    return Ok(());
                }
                loop {
                    skip_ws(b, i);
                    string(b, i)?;
                    skip_ws(b, i);
                    if b.get(*i) != Some(&b':') {
                        return Err(format!("expected ':' at byte {i}", i = *i));
                    }
                    *i += 1;
                    value(b, i)?;
                    skip_ws(b, i);
                    match b.get(*i) {
                        Some(b',') => *i += 1,
                        Some(b'}') => {
                            *i += 1;
                            return Ok(());
                        }
                        _ => return Err(format!("expected ',' or '}}' at byte {i}", i = *i)),
                    }
                }
            }
            Some(b'[') => {
                *i += 1;
                skip_ws(b, i);
                if b.get(*i) == Some(&b']') {
                    *i += 1;
                    return Ok(());
                }
                loop {
                    value(b, i)?;
                    skip_ws(b, i);
                    match b.get(*i) {
                        Some(b',') => *i += 1,
                        Some(b']') => {
                            *i += 1;
                            return Ok(());
                        }
                        _ => return Err(format!("expected ',' or ']' at byte {i}", i = *i)),
                    }
                }
            }
            Some(b'"') => string(b, i),
            Some(c) if c.is_ascii_digit() || *c == b'-' => {
                while *i < b.len()
                    && matches!(b[*i], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
                {
                    *i += 1;
                }
                Ok(())
            }
            Some(_) => {
                for lit in ["true", "false", "null"] {
                    if b[*i..].starts_with(lit.as_bytes()) {
                        *i += lit.len();
                        return Ok(());
                    }
                }
                Err(format!("unexpected byte at {i}", i = *i))
            }
            None => Err("unexpected end of input".into()),
        }
    }
    fn string(b: &[u8], i: &mut usize) -> Result<(), String> {
        if b.get(*i) != Some(&b'"') {
            return Err(format!("expected '\"' at byte {i}", i = *i));
        }
        *i += 1;
        while let Some(&c) = b.get(*i) {
            match c {
                b'"' => {
                    *i += 1;
                    return Ok(());
                }
                b'\\' => {
                    *i += 2;
                }
                0x00..=0x1f => {
                    return Err(format!("unescaped control byte at {i}", i = *i));
                }
                _ => *i += 1,
            }
        }
        Err("unterminated string".into())
    }
    value(bytes, &mut i)?;
    skip_ws(bytes, &mut i);
    if i != bytes.len() {
        return Err(format!("trailing bytes after value at {i}"));
    }
    Ok(())
}

#[test]
fn traced_or_corpus_exports_valid_chrome_json() {
    for name in ["queen1", "members", "ancestors"] {
        let r = traced_or_run(name);
        let trace = r.trace.as_ref().expect("tracing enabled");
        assert!(!trace.is_empty(), "{name}: traced run recorded no events");

        let json = trace.to_chrome_json();
        assert!(
            json.starts_with("{\"traceEvents\":["),
            "{name}: not a trace_event document"
        );
        validate_json(&json).unwrap_or_else(|e| panic!("{name}: invalid JSON: {e}"));

        // Perfetto requires the instant-event scope field.
        assert!(json.contains("\"ph\":"), "{name}: no event phase field");
        assert!(json.contains("\"ts\":"), "{name}: no timestamp field");
        assert!(json.contains("\"tid\":"), "{name}: no worker thread field");
    }
}

#[test]
fn merged_trace_timestamps_are_monotone_per_worker() {
    let r = traced_or_run("queen1");
    let trace = r.trace.as_ref().unwrap();
    let mut last: std::collections::HashMap<usize, u64> = Default::default();
    for ev in &trace.events {
        let prev = last.entry(ev.worker).or_insert(0);
        assert!(
            ev.t >= *prev,
            "worker {} time went backwards: {} -> {} ({})",
            ev.worker,
            prev,
            ev.t,
            ev.kind.name()
        );
        *prev = ev.t;
    }
    assert!(
        trace.workers() >= 2,
        "4-worker run should involve >1 worker"
    );
}

#[test]
fn trace_checker_holds_on_traced_corpus() {
    for name in ["queen1", "members", "ancestors"] {
        let r = traced_or_run(name);
        let trace = r.trace.as_ref().unwrap();
        if let Err(violations) = TraceChecker::check(trace) {
            panic!("{name}: trace invariant violations: {violations:#?}");
        }
    }
}

/// Tracing must be free when off: the default config builds a [`Tracer`]
/// with no ring buffer behind it, and a disabled run carries no trace.
#[test]
fn disabled_tracing_allocates_no_ring_buffers() {
    let mut t = Tracer::new(&TraceConfig::default(), 0);
    assert!(!t.is_enabled(), "default config must leave tracing off");
    assert!(
        t.take().is_none(),
        "disabled tracer must not own a ring buffer"
    );

    let b = ace_programs::benchmark("members").unwrap();
    let ace = Ace::load(&(b.program)(b.test_size)).unwrap();
    let r = ace
        .run(
            b.mode,
            &(b.query)(b.test_size),
            &cfg(4, TraceConfig::default()),
        )
        .unwrap();
    assert!(r.trace.is_none(), "disabled run must not carry a trace");
}

/// Tracing charges zero virtual cost: enabling it must not perturb the
/// simulated clock of a deterministic run.
#[test]
fn tracing_does_not_change_virtual_time() {
    for name in ["queen1", "members", "ancestors"] {
        let b = ace_programs::benchmark(name).unwrap();
        let ace = Ace::load(&(b.program)(b.test_size)).unwrap();
        let q = (b.query)(b.test_size);
        let plain = ace
            .run(b.mode, &q, &cfg(4, TraceConfig::default()))
            .unwrap();
        let traced = ace
            .run(b.mode, &q, &cfg(4, TraceConfig::enabled()))
            .unwrap();
        assert_eq!(
            plain.virtual_time, traced.virtual_time,
            "{name}: tracing perturbed the virtual clock"
        );
        let mut a = plain.solutions;
        let mut b2 = traced.solutions;
        a.sort();
        b2.sort();
        assert_eq!(a, b2, "{name}: tracing perturbed the solutions");
    }
}

/// Server-session round trip: the lifecycle trace of a served workload
/// (one completed session, one cancelled mid-stream) exports valid Chrome
/// JSON, passes the checker, and orders admit → first-answer → cancel →
/// drain causally per session.
#[test]
fn server_session_trace_round_trips() {
    let ace = Ace::load(
        r#"
        member(X, [X|_]).
        member(X, [_|T]) :- member(X, T).
        d(0). d(1). d(2). d(3). d(4).
        stream(X) :- d(X).
        stream(X) :- stream(X).
        "#,
    )
    .unwrap();
    let server = ace.serve(ServerConfig::default().with_trace(TraceConfig::enabled()));

    let done = server
        .submit(QueryRequest::new(
            Mode::Sequential,
            "member(X, [1,2,3])",
            EngineConfig::default().all_solutions(),
        ))
        .unwrap();
    let (answers, outcome) = done.drain();
    assert_eq!(answers.len(), 3);
    assert_eq!(outcome.end, SessionEnd::Completed);

    let cancelled = server
        .submit(QueryRequest::new(
            Mode::Sequential,
            "stream(X)",
            EngineConfig::default().all_solutions(),
        ))
        .unwrap();
    // Let it stream at least one answer before cancelling.
    assert!(cancelled.next_answer().is_some());
    cancelled.cancel();
    assert_eq!(cancelled.wait().end, SessionEnd::ClientCancelled);

    let trace = server.take_trace();
    drop(server);

    // Valid Chrome trace_event JSON, same bar as the engine traces.
    let json = trace.to_chrome_json();
    assert!(json.starts_with("{\"traceEvents\":["));
    validate_json(&json).unwrap_or_else(|e| panic!("invalid session-trace JSON: {e}"));

    // The checker's session invariants hold (no answer after cancel, no
    // stream without admission).
    TraceChecker::check(&trace).unwrap();

    // Causal ordering per session: timestamps are the server's global
    // sequence numbers, so event positions ARE the causal order.
    let pos = |pred: &dyn Fn(&EventKind) -> bool| {
        trace
            .events
            .iter()
            .position(|e| pred(&e.kind))
            .map(|i| trace.events[i].t)
    };
    let cancelled_id = cancelled.id();
    let admit =
        pos(&|k| matches!(k, EventKind::SessionAdmit { session } if *session == cancelled_id))
            .expect("admit event");
    let first = pos(
        &|k| matches!(k, EventKind::SessionFirstAnswer { session } if *session == cancelled_id),
    )
    .expect("first-answer event");
    let cancel =
        pos(&|k| matches!(k, EventKind::SessionCancel { session } if *session == cancelled_id))
            .expect("cancel event");
    let drain =
        pos(&|k| matches!(k, EventKind::SessionDrain { session, .. } if *session == cancelled_id))
            .expect("drain event");
    assert!(
        admit < first && first < cancel && cancel < drain,
        "session lifecycle out of order: admit={admit} first={first} cancel={cancel} drain={drain}"
    );
}

/// And-parallel runs trace too: frame allocation/elision and the
/// lifecycle layer both show up when asked for.
#[test]
fn and_parallel_traces_with_lifecycle() {
    let ace = Ace::load(
        r#"
        double(X, Y) :- Y is X * 2.
        pl([], []).
        pl([H|T], [H2|T2]) :- double(H, H2) & pl(T, T2).
        "#,
    )
    .unwrap();
    let r = ace
        .run(
            Mode::AndParallel,
            "pl([1,2,3,4], Out)",
            &cfg(3, TraceConfig::enabled().with_lifecycle()),
        )
        .unwrap();
    assert_eq!(r.solutions, vec!["Out=[2,4,6,8]"]);
    let trace = r.trace.as_ref().unwrap();
    let names: std::collections::HashSet<&str> =
        trace.events.iter().map(|e| e.kind.name()).collect();
    assert!(
        names.contains("phase-start") && names.contains("phase-end"),
        "lifecycle layer missing: {names:?}"
    );
    assert!(
        names.contains("frame-alloc") || names.contains("frame-elide"),
        "and-engine events missing: {names:?}"
    );
    TraceChecker::check(trace).unwrap();
}
