//! Design-choice policies are correctness-neutral and behave as designed:
//!
//! * `ShipPolicy::Eager` vs `Demand` — identical solutions; `Demand` never
//!   copies goals on one worker;
//! * `OrDispatch::Topmost` vs `Deepest` — identical solution multisets.

use ace_core::{Ace, Mode};
use ace_runtime::{EngineConfig, OptFlags, OrDispatch, ShipPolicy};

fn sorted(mut v: Vec<String>) -> Vec<String> {
    v.sort();
    v
}

#[test]
fn ship_policies_agree_on_solutions() {
    for name in ["map2", "takeuchi", "map1"] {
        let b = ace_programs::benchmark(name).unwrap();
        let ace = Ace::load(&(b.program)(b.test_size)).unwrap();
        let query = (b.query)(b.test_size);
        let mut results = Vec::new();
        for ship in [ShipPolicy::Demand, ShipPolicy::Eager] {
            for w in [1, 3] {
                let mut c = EngineConfig::default()
                    .with_workers(w)
                    .with_opts(OptFlags::all());
                c.ship = ship;
                c.max_solutions = if b.all_solutions { None } else { Some(1) };
                let r = ace.run(b.mode, &query, &c).unwrap();
                results.push(r.solutions);
            }
        }
        for r in &results[1..] {
            assert_eq!(r, &results[0], "{name}");
        }
    }
}

#[test]
fn demand_shipping_copies_nothing_on_one_worker() {
    let ace = Ace::load(
        r#"
        w(X, Y) :- Y is X * 3.
        row([], []).
        row([X|T], [Y|T2]) :- w(X, Y) & row(T, T2).
        "#,
    )
    .unwrap();
    let q = "row([1,2,3,4,5,6,7,8], R)";
    let run = |ship: ShipPolicy| {
        let mut c = EngineConfig::default()
            .with_workers(1)
            .with_opts(OptFlags::all());
        c.ship = ship;
        ace.run(Mode::AndParallel, q, &c).unwrap()
    };
    let demand = run(ShipPolicy::Demand);
    let eager = run(ShipPolicy::Eager);
    assert_eq!(demand.solutions, eager.solutions);
    assert_eq!(
        demand.stats.cells_copied, 0,
        "demand shipping must not copy at one worker"
    );
    assert!(eager.stats.cells_copied > 0);
    assert!(demand.virtual_time < eager.virtual_time);
}

#[test]
fn or_dispatch_orders_agree_on_solutions() {
    for name in ["queen1", "members", "ancestors"] {
        let b = ace_programs::benchmark(name).unwrap();
        let ace = Ace::load(&(b.program)(b.test_size)).unwrap();
        let query = (b.query)(b.test_size);
        let mut baseline: Option<Vec<String>> = None;
        for dispatch in [OrDispatch::Deepest, OrDispatch::Topmost] {
            for opts in [OptFlags::none(), OptFlags::lao_only()] {
                let mut c = EngineConfig::default()
                    .with_workers(4)
                    .with_opts(opts)
                    .all_solutions();
                c.or_dispatch = dispatch;
                let got = sorted(ace.run(b.mode, &query, &c).unwrap().solutions);
                match &baseline {
                    None => baseline = Some(got),
                    Some(b0) => assert_eq!(&got, b0, "{name} {dispatch:?}"),
                }
            }
        }
    }
}
