//! Shape tests: reproduce the paper's *structural* figures as assertions.
//!
//! * Figure 4 — with LPCO, `process_list/2`-style recursion runs in ONE
//!   wide parcall frame instead of a chain of nested frames.
//! * Figures 6/7 — the `member/2` search tree is a deep chain without LAO
//!   and collapses to a shallow, wide node with it.
//! * §4.1 — SPO allocates no markers for deterministic subgoals.
//! * Figure 2's data structures exist and are counted.

use ace_core::{Ace, Mode};
use ace_runtime::{EngineConfig, OptFlags, OrScheduler};

fn cfg(workers: usize, opts: OptFlags) -> EngineConfig {
    EngineConfig::default()
        .with_workers(workers)
        .with_opts(opts)
        .all_solutions()
}

const PROCESS_LIST: &str = r#"
    process(X, Y) :- Y is X * 10.
    process_list([], []).
    process_list([H|T], [HO|TO]) :- process(H, HO) & process_list(T, TO).
"#;

/// Figure 4: frame count n without LPCO, 1 with; slot count grows instead.
#[test]
fn figure4_lpco_flattens_recursion() {
    let ace = Ace::load(PROCESS_LIST).unwrap();
    let n = 8;
    let list: Vec<String> = (1..=n).map(|i| i.to_string()).collect();
    let q = format!("process_list([{}], Out)", list.join(","));

    let unopt = ace
        .run(Mode::AndParallel, &q, &cfg(2, OptFlags::none()))
        .unwrap();
    assert_eq!(
        unopt.stats.parcall_frames as usize, n,
        "one frame per level"
    );

    let opt = ace
        .run(Mode::AndParallel, &q, &cfg(2, OptFlags::lpco_only()))
        .unwrap();
    assert_eq!(opt.stats.parcall_frames, 1, "single flat frame");
    assert_eq!(opt.stats.frames_elided_lpco as usize, n - 1);
    // every recursion level contributed its two subgoals to the flat frame
    assert_eq!(
        opt.stats.parcall_slots + opt.stats.slots_merged_lpco,
        unopt.stats.parcall_slots
    );
    assert_eq!(unopt.solutions, opt.solutions);
}

/// Figures 6/7: or-tree depth for the member pattern: O(n) vs O(1)-ish.
///
/// The figure's traversal-cost claim is a statement about tree-walking
/// schedulers, so it is measured under the `Traversal` oracle — the pool
/// scheduler makes work-finding O(1) regardless of tree depth (that
/// regression is covered by `tests/scheduler_equivalence.rs`).
#[test]
fn figures6_7_lao_collapses_member_chain() {
    let b = ace_programs::benchmark("members").unwrap();
    let ace = Ace::load(&(b.program)(12)).unwrap();
    let q = "member(X, [1,2,3,4,5,6,7,8,9,10,11,12]), X > 100";

    let unopt = ace
        .run(
            Mode::OrParallel,
            q,
            &cfg(4, OptFlags::none()).with_or_scheduler(OrScheduler::Traversal),
        )
        .unwrap();
    let opt = ace
        .run(
            Mode::OrParallel,
            q,
            &cfg(4, OptFlags::lao_only()).with_or_scheduler(OrScheduler::Traversal),
        )
        .unwrap();
    assert!(unopt.solutions.is_empty() && opt.solutions.is_empty());
    let (ud, od) = (unopt.tree_depth.unwrap(), opt.tree_depth.unwrap());
    assert!(
        ud >= 6,
        "unoptimized member chain should publish deep ({ud})"
    );
    assert!(od <= 2, "LAO keeps the tree shallow ({od})");
    assert!(opt.stats.cp_reused_lao > 0);
    // work-finding traversal shrinks accordingly
    assert!(
        opt.stats.tree_visits < unopt.stats.tree_visits,
        "visits: {} !< {}",
        opt.stats.tree_visits,
        unopt.stats.tree_visits
    );
}

/// §4.1: deterministic subgoals allocate no markers under SPO; the
/// unoptimized engine allocates two per subgoal execution.
#[test]
fn spo_elides_markers_for_deterministic_subgoals() {
    let ace = Ace::load(PROCESS_LIST).unwrap();
    let q = "process_list([1,2,3,4,5,6], Out)";

    let unopt = ace
        .run(Mode::AndParallel, q, &cfg(3, OptFlags::none()))
        .unwrap();
    assert!(unopt.stats.markers_allocated > 0);
    assert_eq!(unopt.stats.markers_elided_spo, 0);

    let opt = ace
        .run(Mode::AndParallel, q, &cfg(3, OptFlags::spo_only()))
        .unwrap();
    assert_eq!(
        opt.stats.markers_allocated, 0,
        "all subgoals are deterministic: no markers at all"
    );
    assert!(opt.stats.markers_elided_spo >= unopt.stats.markers_allocated);
}

/// SPO still allocates markers when a subgoal really is nondeterministic.
#[test]
fn spo_keeps_markers_for_nondeterministic_subgoals() {
    let ace = Ace::load(
        r#"
        pick(1). pick(2).
        pair(X, Y) :- pick(X) & pick(Y).
        "#,
    )
    .unwrap();
    let r = ace
        .run(
            Mode::AndParallel,
            "pair(X, Y)",
            &cfg(2, OptFlags::spo_only()),
        )
        .unwrap();
    assert_eq!(r.solutions.len(), 4);
    assert!(r.stats.markers_allocated > 0);
}

/// PDO: on one worker every adjacent subgoal pair merges; the merged
/// execution allocates fewer markers than the unoptimized one.
#[test]
fn pdo_merges_contiguous_subgoals() {
    let ace = Ace::load(
        r#"
        w(X, Y) :- Y is X + 1.
        all(A, B, C, D) :- w(1, A) & w(2, B) & w(3, C) & w(4, D).
        "#,
    )
    .unwrap();
    let unopt = ace
        .run(Mode::AndParallel, "all(A,B,C,D)", &cfg(1, OptFlags::none()))
        .unwrap();
    let opt = ace
        .run(
            Mode::AndParallel,
            "all(A,B,C,D)",
            &cfg(1, OptFlags::pdo_only()),
        )
        .unwrap();
    assert_eq!(unopt.solutions, opt.solutions);
    // the rightmost subgoal runs inline on the owner; with owner-PDO the
    // three shipped slots all run directly on the owner's machine too
    assert_eq!(opt.stats.pdo_merges, 3);
    assert!(opt.stats.markers_allocated < unopt.stats.markers_allocated);
}

/// Inside failure crosses one flat frame under LPCO instead of a chain of
/// nested frames (the paper's "whole conjunction fails in one single
/// step"): failure-propagation traversals shrink.
#[test]
fn lpco_failure_crosses_one_frame() {
    let ace = Ace::load(
        r#"
        check(X) :- X < 7.
        process(X, Y) :- check(X), Y is X * 10.
        process_list([], []).
        process_list([H|T], [HO|TO]) :- process(H, HO) & process_list(T, TO).
        "#,
    )
    .unwrap();
    // element 9 fails deep inside the recursion
    let q = "process_list([1,2,3,4,5,6,9,1,1,1], Out)";
    let unopt = ace
        .run(Mode::AndParallel, q, &cfg(2, OptFlags::none()))
        .unwrap();
    let opt = ace
        .run(Mode::AndParallel, q, &cfg(2, OptFlags::lpco_only()))
        .unwrap();
    assert!(unopt.solutions.is_empty() && opt.solutions.is_empty());
    assert!(
        opt.stats.frame_traversals < unopt.stats.frame_traversals,
        "failure propagation: {} !< {}",
        opt.stats.frame_traversals,
        unopt.stats.frame_traversals
    );
}
