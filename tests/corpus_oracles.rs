//! Randomized oracles for the benchmark corpus: the Prolog programs must
//! compute what their Rust reference implementations compute, under the
//! parallel engine with all optimizations enabled.

use ace_core::{Ace, Mode};
use ace_runtime::{EngineConfig, OptFlags};
use proptest::prelude::*;

fn cfg(workers: usize) -> EngineConfig {
    EngineConfig::default()
        .with_workers(workers)
        .with_opts(OptFlags::all())
        .first_solution()
}

fn render_list(items: &[i64]) -> String {
    format!(
        "[{}]",
        items
            .iter()
            .map(|i| i.to_string())
            .collect::<Vec<_>>()
            .join(",")
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// quick_sort sorts exactly like Rust's sort.
    #[test]
    fn qsort_matches_rust_sort(
        mut xs in prop::collection::vec(0i64..100, 0..25),
        workers in 1usize..5,
    ) {
        let b = ace_programs::benchmark("quick_sort").unwrap();
        let ace = Ace::load(&(b.program)(4)).unwrap();
        let q = format!("qsort({}, S)", render_list(&xs));
        let r = ace.run(Mode::AndParallel, &q, &cfg(workers)).unwrap();
        xs.sort();
        prop_assert_eq!(&r.solutions, &vec![format!("S={}", render_list(&xs))]);
    }

    /// The parallel map is the pointwise map of its transformer.
    #[test]
    fn map_is_pointwise(
        xs in prop::collection::vec(0i64..1000, 0..15),
        workers in 1usize..5,
    ) {
        let b = ace_programs::benchmark("map2").unwrap();
        let ace = Ace::load(&(b.program)(4)).unwrap();
        // reference for work/3: iterate x := (x*3+1) mod 1000, 160 times
        let expect: Vec<i64> = xs
            .iter()
            .map(|&x0| {
                let mut x = x0;
                for _ in 0..160 {
                    x = (x * 3 + 1) % 1000;
                }
                x
            })
            .collect();
        let q = format!("map({}, Out)", render_list(&xs));
        let r = ace.run(Mode::AndParallel, &q, &cfg(workers)).unwrap();
        prop_assert_eq!(
            &r.solutions,
            &vec![format!("Out={}", render_list(&expect))]
        );
    }

    /// poccur counts occurrences exactly.
    #[test]
    fn occur_counts(
        lists in prop::collection::vec(
            prop::collection::vec(0i64..10, 0..12),
            1..6
        ),
        needle in 0i64..10,
        workers in 1usize..5,
    ) {
        let b = ace_programs::benchmark("occur").unwrap();
        let ace = Ace::load(&(b.program)(3)).unwrap();
        let expect: usize = lists
            .iter()
            .flat_map(|l| l.iter())
            .filter(|&&x| x == needle)
            .count();
        let rendered = format!(
            "[{}]",
            lists
                .iter()
                .map(|l| render_list(l))
                .collect::<Vec<_>>()
                .join(",")
        );
        let q = format!("poccur({rendered}, {needle}, T)");
        let r = ace.run(Mode::AndParallel, &q, &cfg(workers)).unwrap();
        prop_assert_eq!(&r.solutions, &vec![format!("T={expect}")]);
    }
}

/// Hanoi produces exactly 2^n − 1 moves, and the move sequence is legal.
#[test]
fn hanoi_move_count_and_legality() {
    let b = ace_programs::benchmark("hanoi").unwrap();
    let ace = Ace::load(&(b.program)(5)).unwrap();
    for n in 1..=7usize {
        let r = ace
            .run(Mode::AndParallel, &format!("hanoi({n}, M)"), &cfg(3))
            .unwrap();
        assert_eq!(r.solutions.len(), 1);
        let moves = r.solutions[0].matches("mv(").count();
        assert_eq!(moves, (1 << n) - 1, "hanoi({n})");
    }
}

/// Takeuchi agrees with the Rust reference.
#[test]
fn takeuchi_matches_reference() {
    fn tak(x: i64, y: i64, z: i64) -> i64 {
        if x <= y {
            z
        } else {
            tak(tak(x - 1, y, z), tak(y - 1, z, x), tak(z - 1, x, y))
        }
    }
    let b = ace_programs::benchmark("takeuchi").unwrap();
    let ace = Ace::load(&(b.program)(5)).unwrap();
    for (x, y, z) in [(4i64, 2, 0), (6, 3, 0), (8, 4, 2), (7, 5, 1)] {
        let r = ace
            .run(
                Mode::AndParallel,
                &format!("tak({x}, {y}, {z}, A)"),
                &cfg(4),
            )
            .unwrap();
        assert_eq!(r.solutions, vec![format!("A={}", tak(x, y, z))]);
    }
}

/// Known N-queens solution counts through the or-engine.
#[test]
fn queens_known_counts() {
    let b = ace_programs::benchmark("queen1").unwrap();
    for (n, count) in [(4usize, 2usize), (5, 10), (6, 4), (7, 40)] {
        let ace = Ace::load(&(b.program)(n)).unwrap();
        let mut c = EngineConfig::default()
            .with_workers(4)
            .with_opts(OptFlags::lao_only());
        c.max_solutions = None;
        let r = ace
            .run(Mode::OrParallel, &format!("queens1({n}, Qs)"), &c)
            .unwrap();
        assert_eq!(r.solutions.len(), count, "queens({n})");
    }
}

/// The FD and Prolog formulations of N-queens agree on solution counts.
#[test]
fn fd_and_prolog_queens_agree() {
    let b = ace_programs::benchmark("queen1").unwrap();
    for n in 4..=7usize {
        let ace = Ace::load(&(b.program)(n)).unwrap();
        let mut c = EngineConfig::default().with_workers(3);
        c.max_solutions = None;
        let prolog = ace
            .run(Mode::OrParallel, &format!("queens1({n}, Qs)"), &c)
            .unwrap()
            .solutions
            .len();
        let fd = ace_fd::Fd::new(ace_fd::queens(n))
            .solve_all(&c)
            .solutions
            .len();
        assert_eq!(prolog, fd, "n={n}");
    }
}
