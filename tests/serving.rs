//! Serving-layer soak: many concurrent sessions multiplexed over one small
//! fleet, with faults injected at both the serving and the engine layer.
//! Every session must end in exactly one of {completed, cancelled-by-
//! deadline, rejected-at-admission, degraded-with-recovery}, and every
//! session's streamed answers must be a prefix (and-parallel, sequential)
//! or sub-multiset (or-parallel) of the sequential oracle.

use std::collections::HashMap;
use std::time::Duration;

use ace_core::{Ace, AceError, Mode};
use ace_runtime::{EngineConfig, FaultKind, FaultPlan, OptFlags, TraceChecker, TraceConfig};
use ace_server::{Priority, QueryRequest, Serve, ServerConfig, SessionEnd, SessionHandle};

const PROG: &str = r#"
    double(X, Y) :- Y is X * 2.
    p(1). p(2). p(3).
    pl([], []).
    pl([H|T], [H2|T2]) :- double(H, H2) & pl(T, T2).
    member(X, [X|_]).
    member(X, [_|T]) :- member(X, T).
    d(0). d(1). d(2). d(3). d(4).
    stream(X) :- d(X).
    stream(X) :- stream(X).
    append([], L, L).
    append([H|T], L, [H|R]) :- append(T, L, R).
    nrev([], []).
    nrev([H|T], R) :- nrev(T, RT), append(RT, [H], R).
"#;

fn engine_cfg(workers: usize) -> EngineConfig {
    EngineConfig::default()
        .with_workers(workers)
        .with_opts(OptFlags::all())
        .all_solutions()
}

fn multiset(v: &[String]) -> HashMap<&str, usize> {
    let mut m = HashMap::new();
    for s in v {
        *m.entry(s.as_str()).or_insert(0) += 1;
    }
    m
}

fn is_sub_multiset(sub: &[String], of: &[String]) -> bool {
    let big = multiset(of);
    multiset(sub)
        .iter()
        .all(|(k, n)| big.get(k).is_some_and(|m| m >= n))
}

/// One submitted session and what we know about it.
struct Tracked {
    handle: SessionHandle,
    query: String,
    mode: Mode,
    /// Expected deterministic answer order (sequential oracle); `None`
    /// for the infinite generator.
    oracle: Option<Vec<String>>,
}

#[test]
fn soak_hundred_sessions_partition_into_four_outcomes() {
    let ace = Ace::load(PROG).unwrap();
    let finite_queries: Vec<(&str, Mode)> = vec![
        ("member(X, [1,2,3,4,5])", Mode::Sequential),
        ("pl([1,2,3], Out)", Mode::AndParallel),
        ("member(X, [1,2,3,4,5])", Mode::OrParallel),
        ("nrev([1,2,3,4,5], R)", Mode::Sequential),
        ("p(X), double(X, Y)", Mode::OrParallel),
        ("pl([1,2], Out)", Mode::AndParallel),
    ];
    let mut oracles: HashMap<&str, Vec<String>> = HashMap::new();
    for (q, _) in &finite_queries {
        oracles.insert(q, ace.sequential_solutions(q).unwrap());
    }

    // Serving-layer faults: worker deaths and stalls inside dispatch
    // windows, spread across the 8 fleet threads.
    let server_plan = FaultPlan::new(42)
        .with(0, 2, FaultKind::Die)
        .with(3, 3, FaultKind::Die)
        .with(1, 2, FaultKind::Stall { cost: 200 })
        .with(5, 4, FaultKind::Stall { cost: 100 });
    let server = ace.serve(
        ServerConfig::default()
            .with_fleet(8)
            .with_max_in_flight(40)
            .with_fault_plan(server_plan)
            .with_trace(TraceConfig::enabled()),
    );

    let mut tracked: Vec<Tracked> = Vec::new();
    let mut rejected = 0usize;
    let mut submitted = 0usize;

    // Phase 1: pin the whole fleet down with infinite sessions on a short
    // deadline, so the flood below genuinely queues (and overflows).
    for _ in 0..8 {
        let req = QueryRequest::new(Mode::Sequential, "stream(X)", engine_cfg(2))
            .with_priority(Priority::Low)
            .with_deadline(Duration::from_millis(60));
        submitted += 1;
        let h = server.submit(req).expect("fleet-pinning session admitted");
        tracked.push(Tracked {
            handle: h,
            query: "stream(X)".into(),
            mode: Mode::Sequential,
            oracle: None,
        });
    }

    // Phase 2: flood with 112 more sessions — finite queries across all
    // three modes, a few with engine-level fault plans, one bad seed per
    // tenant. With the fleet pinned and the queue capped at 40, a chunk of
    // these must be rejected at admission.
    for i in 0..112 {
        let (q, mode) = finite_queries[i % finite_queries.len()];
        let mut cfg = engine_cfg(2).with_memo_tenant((i % 4) as u32);
        if i % 11 == 3 && mode != Mode::Sequential {
            // Engine-level worker death: supervision contains it and the
            // session degrades to a sequential replay.
            cfg = cfg.with_fault_plan(FaultPlan::new(i as u64).with(0, 2, FaultKind::Die));
        }
        let req = QueryRequest::new(mode, q, cfg)
            .with_tenant((i % 4) as u32)
            .with_priority(if i % 3 == 0 {
                Priority::High
            } else {
                Priority::Normal
            })
            .with_deadline(Duration::from_secs(30));
        submitted += 1;
        match server.submit(req) {
            Ok(h) => tracked.push(Tracked {
                handle: h,
                query: q.into(),
                mode,
                oracle: Some(oracles[q].clone()),
            }),
            Err(AceError::Overloaded(_)) => rejected += 1,
            Err(e) => panic!("submission {i} failed with non-admission error: {e:?}"),
        }
    }

    assert!(submitted >= 120, "soak must drive at least 120 submissions");
    assert!(
        rejected > 0,
        "the flood must overflow the admission controller"
    );

    // Every admitted session ends in exactly one of the allowed states.
    let mut completed = 0usize;
    let mut deadline_cancelled = 0usize;
    let mut degraded = 0usize;
    for t in &tracked {
        let (answers, outcome) = t.handle.drain();
        match &outcome.end {
            SessionEnd::Completed => completed += 1,
            SessionEnd::DeadlineCancelled => deadline_cancelled += 1,
            SessionEnd::Degraded => {
                degraded += 1;
                let report = outcome.report.as_ref().expect("degraded report");
                assert!(
                    report
                        .recovery
                        .iter()
                        .any(|l| l.contains("sequential replay")),
                    "degraded session {} has no recovery record: {:?}",
                    t.handle.id(),
                    report.recovery
                );
            }
            other => panic!(
                "session {} ({} / {:?}) ended outside the allowed partition: {other:?}",
                t.handle.id(),
                t.query,
                t.mode
            ),
        }
        // Streamed answers are a prefix / sub-multiset of the oracle.
        match &t.oracle {
            None => {
                for a in &answers {
                    assert!(a.starts_with("X="), "unexpected generator answer {a}");
                }
            }
            Some(oracle) => match t.mode {
                Mode::Sequential | Mode::AndParallel => assert_eq!(
                    &answers[..],
                    &oracle[..answers.len().min(oracle.len())],
                    "session {} ({}) streamed a non-prefix",
                    t.handle.id(),
                    t.query
                ),
                Mode::OrParallel => assert!(
                    is_sub_multiset(&answers, oracle),
                    "session {} ({}) streamed answers outside the oracle multiset: {answers:?}",
                    t.handle.id(),
                    t.query
                ),
            },
        }
        // Completed finite sessions must deliver the whole oracle.
        if let (SessionEnd::Completed, Some(oracle)) = (&outcome.end, &t.oracle) {
            assert_eq!(
                multiset(&answers),
                multiset(oracle),
                "completed session {} ({}) lost answers",
                t.handle.id(),
                t.query
            );
        }
    }

    assert!(
        deadline_cancelled > 0,
        "deadline sessions must be reclaimed"
    );
    assert!(degraded > 0, "injected faults must degrade some sessions");
    assert!(completed > 0, "most sessions must still complete");

    // The trace satisfies the serving invariants (no answer after cancel,
    // no stream from a rejected session).
    let trace = server.take_trace();
    if let Err(violations) = TraceChecker::check(&trace) {
        panic!("serving trace violations: {violations:?}");
    }

    let stats = server.shutdown();
    assert_eq!(stats.rejected as usize, rejected);
    assert_eq!(stats.admitted as usize, tracked.len());
    assert_eq!(
        stats.completed + stats.deadline_cancelled + stats.degraded,
        stats.admitted,
        "outcome partition must cover every admitted session: {stats:?}"
    );
    assert_eq!(stats.failed, 0, "{stats:?}");
    assert_eq!(stats.client_cancelled, 0, "{stats:?}");
}
