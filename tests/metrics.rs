//! Metrics tier-1: the live registry's Prometheus text export is
//! well-formed, snapshots agree with the run reports they fold, and a
//! metrics-disabled run is bit-identical to one that never heard of the
//! registry.

use std::sync::Arc;

use ace_core::Ace;
use ace_runtime::{EngineConfig, MetricsRegistry, OptFlags};

fn cfg(workers: usize) -> EngineConfig {
    EngineConfig::default()
        .with_workers(workers)
        .with_opts(OptFlags::all())
        .all_solutions()
}

fn corpus_run(name: &str, registry: Option<Arc<MetricsRegistry>>) -> ace_core::RunReport {
    let b = ace_programs::benchmark(name).unwrap();
    let ace = Ace::load(&(b.program)(b.test_size)).unwrap();
    let mut c = cfg(4);
    if let Some(r) = registry {
        c = c.with_metrics(r);
    }
    ace.run(b.mode, &(b.query)(b.test_size), &c).unwrap()
}

/// Minimal Prometheus text-exposition validator: enough to prove the
/// export is structurally well-formed (comment lines, sample-line
/// grammar, label quoting/escaping, numeric values, per-histogram
/// cumulative monotonicity) without an external parser dependency.
fn validate_prometheus(text: &str) -> Result<(), String> {
    fn valid_name(s: &str) -> bool {
        !s.is_empty()
            && s.chars()
                .next()
                .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
            && s.chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    }
    // (metric base name, cumulative count) of the histogram bucket series
    // currently being read, to check monotone cumulative counts.
    let mut bucket_run: Option<(String, u64)> = None;
    for (ln, line) in text.lines().enumerate() {
        let ln = ln + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# ") {
            let mut parts = rest.splitn(3, ' ');
            let kw = parts.next().unwrap_or("");
            let name = parts.next().unwrap_or("");
            match kw {
                "HELP" => {
                    if !valid_name(name) || parts.next().is_none() {
                        return Err(format!("line {ln}: malformed HELP comment: {line}"));
                    }
                }
                "TYPE" => {
                    let ty = parts.next().unwrap_or("");
                    if !valid_name(name) || !matches!(ty, "counter" | "gauge" | "histogram") {
                        return Err(format!("line {ln}: malformed TYPE comment: {line}"));
                    }
                }
                _ => return Err(format!("line {ln}: unknown comment keyword: {line}")),
            }
            continue;
        }
        // Sample line: name[{label="value",...}] value
        let (series, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {ln}: no value separator: {line}"))?;
        if value.parse::<f64>().is_err() {
            return Err(format!("line {ln}: non-numeric value {value:?}"));
        }
        let (name, mut le) = (series, None);
        let name = match name.split_once('{') {
            None => name,
            Some((base, rest)) => {
                let body = rest
                    .strip_suffix('}')
                    .ok_or_else(|| format!("line {ln}: unterminated label set: {line}"))?;
                // Split label pairs on `",` boundaries (values are quoted,
                // and quotes inside values are backslash-escaped).
                let mut rem = body;
                while !rem.is_empty() {
                    let (k, v) = rem
                        .split_once("=\"")
                        .ok_or_else(|| format!("line {ln}: malformed label in {line}"))?;
                    if !valid_name(k) {
                        return Err(format!("line {ln}: bad label name {k:?}"));
                    }
                    // Find the closing unescaped quote.
                    let mut end = None;
                    let mut esc = false;
                    for (i, c) in v.char_indices() {
                        match c {
                            '\\' if !esc => esc = true,
                            '"' if !esc => {
                                end = Some(i);
                                break;
                            }
                            _ => esc = false,
                        }
                    }
                    let end = end.ok_or_else(|| format!("line {ln}: unterminated label value"))?;
                    if k == "le" {
                        le = Some(v[..end].to_string());
                    }
                    rem = &v[end + 1..];
                    rem = rem.strip_prefix(',').unwrap_or(rem);
                }
                base
            }
        };
        if !valid_name(name) {
            return Err(format!("line {ln}: bad metric name {name:?}"));
        }
        // Histogram bucket series: cumulative counts must be monotone and
        // end with the +Inf bucket.
        if let Some(base) = name.strip_suffix("_bucket") {
            let le = le.ok_or_else(|| format!("line {ln}: _bucket sample without le label"))?;
            let cum = value
                .parse::<u64>()
                .map_err(|_| format!("line {ln}: non-integer bucket count"))?;
            match &mut bucket_run {
                Some((b, prev)) if b == base => {
                    if cum < *prev {
                        return Err(format!(
                            "line {ln}: bucket counts not cumulative ({prev} then {cum})"
                        ));
                    }
                    *prev = cum;
                }
                _ => bucket_run = Some((base.to_string(), cum)),
            }
            if le != "+Inf" && le.parse::<f64>().is_err() {
                return Err(format!("line {ln}: bad le bound {le:?}"));
            }
        } else {
            bucket_run = None;
        }
    }
    Ok(())
}

#[test]
fn prometheus_export_parses_and_is_wellformed() {
    let registry = MetricsRegistry::shared();
    corpus_run("queen1", Some(registry.clone()));
    corpus_run("map2", Some(registry.clone()));
    // A histogram family too (the engines only fold counters/gauges).
    registry.describe("test_latency_us", "synthetic latency series");
    let h = registry.histogram("test_latency_us", &[("priority", "high")]);
    for v in [3, 17, 290, 12_000, 1_000_000] {
        h.observe(v);
    }
    let text = registry.snapshot().render_prometheus();
    assert!(
        text.contains("# TYPE ace_engine_runs_total counter"),
        "{text}"
    );
    assert!(text.contains("# TYPE test_latency_us histogram"), "{text}");
    assert!(text.contains("test_latency_us_bucket{"), "{text}");
    assert!(text.contains("le=\"+Inf\"} 5"), "{text}");
    assert!(
        text.contains("test_latency_us_count{priority=\"high\"} 5"),
        "{text}"
    );
    validate_prometheus(&text).unwrap_or_else(|e| panic!("export does not parse: {e}\n{text}"));
}

#[test]
fn validator_rejects_malformed_text() {
    assert!(validate_prometheus("name{unterminated 3").is_err());
    assert!(validate_prometheus("name notanumber").is_err());
    assert!(validate_prometheus("# FROB name comment").is_err());
    assert!(validate_prometheus("2badname 3").is_err());
    assert!(validate_prometheus("h_bucket{le=\"5\"} 9\nh_bucket{le=\"+Inf\"} 3").is_err());
    assert!(validate_prometheus("ok{a=\"b\",c=\"d\"} 3\n# HELP ok fine").is_ok());
}

/// The zero-overhead contract, end to end: running with no registry is
/// bit-identical (virtual time AND the full stats struct) to the same
/// deterministic run with a registry attached.
#[test]
fn metrics_disabled_runs_are_bit_identical() {
    for name in ["queen1", "members", "map2"] {
        let plain = corpus_run(name, None);
        let live = corpus_run(name, Some(MetricsRegistry::shared()));
        assert_eq!(
            plain.virtual_time, live.virtual_time,
            "{name}: metrics perturbed the virtual clock"
        );
        assert_eq!(plain.stats, live.stats, "{name}: metrics perturbed stats");
    }
}

/// Snapshots agree with the reports they folded: two runs accumulate, and
/// the per-engine virtual-time total is the sum of the reports'.
#[test]
fn snapshot_agrees_with_run_reports() {
    let registry = MetricsRegistry::shared();
    let r1 = corpus_run("queen1", Some(registry.clone()));
    let r2 = corpus_run("queen1", Some(registry.clone()));
    let snap = registry.snapshot();
    assert_eq!(
        snap.counter_value("ace_engine_runs_total", &[("engine", "or")]),
        Some(2)
    );
    assert_eq!(
        snap.counter_value("ace_engine_virtual_time_total", &[("engine", "or")]),
        Some(r1.virtual_time + r2.virtual_time)
    );
    assert_eq!(
        snap.counter_value(
            "ace_engine_stat_total",
            &[("engine", "or"), ("stat", "solutions")]
        ),
        Some(r1.stats.solutions + r2.stats.solutions)
    );
}
