//! Failure injection: inside backtracking (sibling cancellation), failures
//! at every slot position, redo storms, error propagation, and resource
//! edge cases.

use ace_core::{Ace, Mode};
use ace_runtime::{DriverKind, EngineConfig, OptFlags};

fn cfg(workers: usize, opts: OptFlags) -> EngineConfig {
    EngineConfig::default()
        .with_workers(workers)
        .with_opts(opts)
        .all_solutions()
}

/// A failing subgoal at each position of a wide parallel call must fail
/// the whole call (inside backtracking), under every optimization set.
#[test]
fn failure_at_every_slot_position() {
    for fail_pos in 0..5 {
        let goals: Vec<String> = (0..5)
            .map(|i| {
                if i == fail_pos {
                    "bad(X)".to_owned()
                } else {
                    format!("good({i}, Y{i})")
                }
            })
            .collect();
        let program = r#"
            good(N, Y) :- Y is N * 2.
            bad(_) :- fail.
        "#;
        let query = goals.join(" & ");
        let ace = Ace::load(program).unwrap();
        for opts in [OptFlags::none(), OptFlags::all()] {
            for w in [1, 3] {
                let r = ace.run(Mode::AndParallel, &query, &cfg(w, opts)).unwrap();
                assert!(
                    r.solutions.is_empty(),
                    "pos={fail_pos} w={w} opts={}",
                    opts.label()
                );
                assert!(r.stats.slot_failures >= 1);
            }
        }
    }
}

/// A slow sibling must be cancelled when another slot fails — the run must
/// terminate promptly rather than completing the doomed work.
#[test]
fn sibling_cancellation_on_failure() {
    let ace = Ace::load(
        r#"
        spin(N) :- ( N =< 0 -> true ; N1 is N - 1, spin(N1) ).
        query :- spin(100000) & fail.
        "#,
    )
    .unwrap();
    let r = ace
        .run(Mode::AndParallel, "query", &cfg(2, OptFlags::none()))
        .unwrap();
    assert!(r.solutions.is_empty());
    // the spinning slot is killed long before its 100000 iterations:
    // each iteration costs > 5 units, so an uncancelled run would exceed
    // 500_000 units on the spinning worker alone.
    assert!(
        r.virtual_time < 400_000,
        "cancellation latency too high: {}",
        r.virtual_time
    );
}

/// Nested parallel calls: failure deep in a nested frame propagates up
/// through every level.
#[test]
fn nested_failure_propagates() {
    let ace = Ace::load(
        r#"
        leafok(X, Y) :- Y is X + 1.
        leafbad(_, _) :- fail.
        inner(X, r(A, B)) :- leafok(X, A) & leafbad(X, B).
        outer(X, s(P, Q)) :- inner(X, P) & leafok(X, Q).
        "#,
    )
    .unwrap();
    for opts in [OptFlags::none(), OptFlags::all()] {
        let r = ace
            .run(Mode::AndParallel, "outer(1, S)", &cfg(3, opts))
            .unwrap();
        assert!(r.solutions.is_empty(), "opts={}", opts.label());
    }
}

/// Redo storm: a parallel call whose cross product is enumerated fully by
/// an always-failing continuation terminates with the exact count.
#[test]
fn redo_storm_exhausts_cross_product() {
    let ace = Ace::load(
        r#"
        c(1). c(2). c(3).
        count(N) :- (c(A) & c(B) & c(C)), N is A * 100 + B * 10 + C.
        "#,
    )
    .unwrap();
    for opts in [OptFlags::none(), OptFlags::all()] {
        for w in [1, 2, 4] {
            let r = ace
                .run(Mode::AndParallel, "count(N)", &cfg(w, opts))
                .unwrap();
            assert_eq!(r.solutions.len(), 27, "w={w} opts={}", opts.label());
            // and in exactly sequential order
            assert_eq!(r.solutions.first().map(String::as_str), Some("N=111"));
            assert_eq!(r.solutions.last().map(String::as_str), Some("N=333"));
        }
    }
}

/// Errors in any subgoal surface as errors (not silent failures), from
/// any engine.
#[test]
fn errors_propagate_from_slots() {
    let ace = Ace::load("ok(1). boom(X) :- Y is X + foo, Y > 0.").unwrap();
    let r = ace.run(
        Mode::AndParallel,
        "ok(A) & boom(A)",
        &cfg(2, OptFlags::none()),
    );
    assert!(r.is_err(), "{r:?}");

    let r = ace.run(Mode::OrParallel, "boom(1)", &cfg(2, OptFlags::none()));
    assert!(r.is_err());

    let r = ace.run(Mode::Sequential, "boom(1)", &EngineConfig::default());
    assert!(r.is_err());
}

/// An empty parallel call equivalent (`true & true`) and single-branch
/// degenerate cases behave.
#[test]
fn degenerate_parcalls() {
    let ace = Ace::load("t :- true & true. one(X) :- (X = 1) & true.").unwrap();
    for opts in [OptFlags::none(), OptFlags::all()] {
        let r = ace.run(Mode::AndParallel, "t", &cfg(2, opts)).unwrap();
        assert_eq!(r.solutions.len(), 1);
        let r = ace.run(Mode::AndParallel, "one(X)", &cfg(2, opts)).unwrap();
        assert_eq!(r.solutions, vec!["X=1"]);
    }
}

/// Deep recursion through parallel conjunctions does not overflow the
/// host stack (frames live on the machine's explicit stacks).
#[test]
fn deep_parallel_recursion() {
    let ace = Ace::load(
        r#"
        chain(0, []).
        chain(N, [N|T]) :- N > 0, N1 is N - 1, ( step(N) & chain(N1, T) ).
        step(_).
        "#,
    )
    .unwrap();
    // without LPCO this nests 300 frames; with it, one wide frame
    for opts in [OptFlags::none(), OptFlags::lpco_only()] {
        let mut c = cfg(2, opts);
        c.max_solutions = Some(1);
        let r = ace.run(Mode::AndParallel, "chain(300, L)", &c).unwrap();
        assert_eq!(r.solutions.len(), 1, "opts={}", opts.label());
    }
}

/// Or-engine: a query that fails after deep publication cleans up and
/// terminates (no dangling alternatives / livelock).
#[test]
fn or_engine_failing_deep_search_terminates() {
    let ace = Ace::load(
        r#"
        member(X, [X|_]).
        member(X, [_|T]) :- member(X, T).
        "#,
    )
    .unwrap();
    let list: Vec<String> = (1..=40).map(|i| i.to_string()).collect();
    let q = format!("member(X, [{}]), X > 1000", list.join(","));
    for opts in [OptFlags::none(), OptFlags::lao_only()] {
        let r = ace.run(Mode::OrParallel, &q, &cfg(6, opts)).unwrap();
        assert!(r.solutions.is_empty());
    }
}

/// Cancellation storm: the same parcall frame is cancelled and redone on
/// every alternative of a wide cross product (the failing continuation
/// forces inside backtracking each round). Repeating the identical run
/// must not leak markers or trail extents — under the deterministic driver
/// every repetition's counter sheet is bit-identical to the first, and
/// under threads the per-run structure counts stay within the same bounds
/// instead of growing across repetitions.
#[test]
fn cancellation_storm_no_marker_or_trail_leak() {
    let ace = Ace::load(
        r#"
        c(1). c(2). c(3).
        bad(_, _) :- fail.
        storm :- (c(A) & c(B)), bad(A, B).
        "#,
    )
    .unwrap();
    for driver in [DriverKind::Sim, DriverKind::Threads] {
        let run = || {
            let c = cfg(3, OptFlags::none()).with_driver(driver);
            let r = ace.run(Mode::AndParallel, "storm", &c).unwrap();
            assert!(r.solutions.is_empty());
            // every redo round cancels the frame's slots and re-runs them
            assert!(
                r.stats.redo_rounds >= 8,
                "driver={driver:?}: {}",
                r.stats.redo_rounds
            );
            r.stats
        };
        let baseline = run();
        for round in 1..8 {
            let s = run();
            match driver {
                DriverKind::Sim => {
                    // exact repeatability: identical counters every round
                    assert_eq!(s, baseline, "round {round}: stats drifted from baseline");
                }
                DriverKind::Threads => {
                    // schedule-dependent, but a leak would compound: the
                    // structures of one storm bound the structures of all
                    assert!(
                        s.markers_allocated <= baseline.markers_allocated * 4 + 64,
                        "round {round}: markers grew: {} vs baseline {}",
                        s.markers_allocated,
                        baseline.markers_allocated
                    );
                    assert!(
                        s.trail_undos <= baseline.trail_undos * 4 + 256,
                        "round {round}: trail undos grew: {} vs baseline {}",
                        s.trail_undos,
                        baseline.trail_undos
                    );
                }
            }
        }
    }
}

/// Session-level cancellation storm: N concurrent sessions, all streaming
/// from an infinite generator tagged with their own constant, all
/// cancelled mid-stream. No session may leak a fleet worker (the server
/// must serve fresh queries afterwards), no received answer may be lost,
/// and no answer may bleed across sessions (every answer carries its own
/// session's tag).
#[test]
fn session_cancellation_storm_no_leak_or_bleed() {
    use ace_server::{QueryRequest, Serve, ServerConfig, SessionEnd};

    let ace = Ace::load(
        r#"
        d(0). d(1). d(2). d(3). d(4).
        tagged(T, v(T, D)) :- d(D).
        tagged(T, X) :- tagged(T, X).
        "#,
    )
    .unwrap();
    let server = ace.serve(ServerConfig::default().with_fleet(4).with_max_in_flight(64));

    const SESSIONS: usize = 16;
    let handles: Vec<_> = (0..SESSIONS)
        .map(|i| {
            let q = format!("tagged({i}, X)");
            let h = server
                .submit(QueryRequest::new(
                    Mode::Sequential,
                    q,
                    EngineConfig::default().all_solutions(),
                ))
                .unwrap();
            (i, h)
        })
        .collect();

    // Each session proves its stream is live (two answers received), then
    // cancels mid-stream.
    let mut results = Vec::new();
    for (i, h) in &handles {
        // Only 4 fleet threads: later sessions wait queued while earlier
        // ones stream. Drain in submission order so each gets dispatched.
        let a1 = h.next_answer().expect("first streamed answer");
        let a2 = h.next_answer().expect("second streamed answer");
        h.cancel();
        let (rest, outcome) = h.drain();
        assert_eq!(outcome.end, SessionEnd::ClientCancelled, "session {i}");
        let mut answers = vec![a1, a2];
        answers.extend(rest);
        results.push((*i, answers));
    }

    for (i, answers) in &results {
        assert!(answers.len() >= 2, "session {i} lost streamed answers");
        let tag = format!("v({i},");
        for a in answers {
            assert!(
                a.contains(&tag),
                "session {i} received a foreign answer: {a}"
            );
        }
    }

    // No leaked workers: the fleet still serves, and the admission window
    // is fully released.
    let h = server
        .submit(QueryRequest::new(
            Mode::Sequential,
            "d(X)",
            EngineConfig::default().all_solutions(),
        ))
        .unwrap();
    let (answers, outcome) = h.drain();
    assert_eq!(outcome.end, SessionEnd::Completed);
    assert_eq!(answers, vec!["X=0", "X=1", "X=2", "X=3", "X=4"]);

    let stats = server.shutdown();
    assert_eq!(stats.client_cancelled as usize, SESSIONS);
    assert_eq!(stats.completed, 1);
    assert_eq!(stats.failed, 0);
}

/// Cut committing over a completed parallel call discards its pending
/// alternatives (cross-product pruning).
#[test]
fn cut_over_parcall_commits() {
    let ace = Ace::load(
        r#"
        c(1). c(2).
        first(A, B) :- (c(A) & c(B)), !.
        "#,
    )
    .unwrap();
    for opts in [OptFlags::none(), OptFlags::all()] {
        let r = ace
            .run(Mode::AndParallel, "first(A, B)", &cfg(2, opts))
            .unwrap();
        assert_eq!(r.solutions, vec!["A=1, B=1"], "opts={}", opts.label());
    }
}
