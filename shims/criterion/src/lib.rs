//! In-tree stand-in for the `criterion` crate.
//!
//! The build environment is hermetic (no network, no crates.io mirror),
//! so benches link against this minimal harness instead: same API
//! (`Criterion`, `bench_function`, `Bencher::iter`, `black_box`,
//! `criterion_group!`, `criterion_main!`), but measurement is a plain
//! best-of-N wall-clock timing with no statistics, plots, or baselines.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            iters: self.sample_size as u64,
            best: Duration::MAX,
            total: Duration::ZERO,
        };
        f(&mut bencher);
        if bencher.total == Duration::ZERO {
            println!("{name:<40} (no measurement)");
        } else {
            let mean = bencher.total / bencher.iters.max(1) as u32;
            println!(
                "{name:<40} best {:>12?}  mean {:>12?}  ({} iters)",
                bencher.best, mean, bencher.iters
            );
        }
        self
    }
}

pub struct Bencher {
    iters: u64,
    best: Duration,
    total: Duration,
}

impl Bencher {
    /// Time `routine` `sample_size` times, recording best and mean.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        for _ in 0..self.iters {
            let start = Instant::now();
            black_box(routine());
            let elapsed = start.elapsed();
            self.total += elapsed;
            if elapsed < self.best {
                self.best = elapsed;
            }
        }
    }
}

#[macro_export]
macro_rules! criterion_group {
    (
        name = $name:ident;
        config = $cfg:expr;
        targets = $($target:path),+ $(,)?
    ) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
    ( $name:ident, $($target:path),+ $(,)? ) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ( $($group:path),+ $(,)? ) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
    }

    criterion_group!(
        name = group_with_config;
        config = Criterion::default().sample_size(3);
        targets = sample_bench
    );

    criterion_group!(simple_group, sample_bench);

    #[test]
    fn groups_run() {
        group_with_config();
        simple_group();
    }
}
