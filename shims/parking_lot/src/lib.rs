//! In-tree stand-in for the `parking_lot` crate.
//!
//! The build environment is hermetic (no network, no crates.io mirror), so
//! the workspace ships the minimal lock API it actually uses, implemented
//! over `std::sync`. Two deliberate semantic choices match parking_lot and
//! matter for the fault-injection work:
//!
//! * `lock()` returns the guard directly (no `Result`);
//! * locks are **panic-tolerant**: a worker that panics while holding a
//!   lock does not poison it for the survivors — supervision in
//!   `ace-runtime` relies on being able to keep running after a worker
//!   dies mid-critical-section.

use std::fmt;

/// Mutual exclusion primitive (subset of `parking_lot::Mutex`).
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, ignoring poisoning from panicked holders.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// Reader-writer lock (subset of `parking_lot::RwLock`).
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("RwLock { .. }")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn lock_survives_panicked_holder() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("holder dies");
        })
        .join();
        // a poisoned std mutex would panic here; the shim keeps going
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn try_lock_reports_contention() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}
