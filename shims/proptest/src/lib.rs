//! In-tree stand-in for the `proptest` crate.
//!
//! The build environment is hermetic (no network, no crates.io mirror),
//! so this crate reimplements the subset of proptest the workspace's
//! property tests actually use: `Strategy` with `prop_map` /
//! `prop_flat_map` / `prop_recursive` / `boxed`, integer-range and
//! tuple and `Just` strategies, `any::<T>()`, `prop::collection::vec`,
//! the `".*"` string strategy, and the `proptest!` / `prop_assert!` /
//! `prop_assert_eq!` / `prop_oneof!` macros.
//!
//! Differences from real proptest, on purpose:
//!
//! * **Deterministic by default.** Each test derives its RNG seed from
//!   its own module path, so a given build always replays the same
//!   cases. Set `PROPTEST_SEED=<u64>` to rotate the seed (CI does this
//!   on a schedule) and `PROPTEST_CASES=<u32>` to scale case counts.
//! * **No shrinking.** Failures report the seed and case index instead;
//!   rerunning with the same seed replays the exact failing input.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// Small deterministic RNG (splitmix64) used to drive all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
    seed: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed, seed }
    }

    /// Seed an RNG for a named test: deterministic per test, rotated
    /// globally by the `PROPTEST_SEED` environment variable.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the test name keeps distinct tests decorrelated.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        let base = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.trim().parse::<u64>().ok())
            .unwrap_or(0x9e37_79b9_7f4a_7c15);
        TestRng::new(base ^ h)
    }

    pub fn seed(&self) -> u64 {
        self.seed
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `0..bound` (bound > 0; modulo bias is fine here).
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }
}

// ---------------------------------------------------------------------------
// Core trait
// ---------------------------------------------------------------------------

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F, O>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map {
            source: self,
            f,
            _marker: PhantomData,
        }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F, S>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap {
            source: self,
            f,
            _marker: PhantomData,
        }
    }

    /// Build a recursive strategy by unrolling `recurse` to at most
    /// `depth` levels, mixing the leaf back in at every level. The
    /// `_desired_size` / `_expected_branch` hints are accepted for API
    /// compatibility but unused (depth alone bounds generated sizes).
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut cur = leaf.clone();
        for _ in 0..depth {
            let deeper = recurse(cur).boxed();
            cur = Union::new(vec![leaf.clone(), deeper]).boxed();
        }
        cur
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// Type-erased, cheaply clonable strategy handle.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

// ---------------------------------------------------------------------------
// Combinators
// ---------------------------------------------------------------------------

pub struct Map<S, F, O> {
    source: S,
    f: F,
    _marker: PhantomData<fn() -> O>,
}

impl<S, F, O> Strategy for Map<S, F, O>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

pub struct FlatMap<S, F, S2> {
    source: S,
    f: F,
    _marker: PhantomData<fn() -> S2>,
}

impl<S, F, S2> Strategy for FlatMap<S, F, S2>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        let mid = self.source.generate(rng);
        (self.f)(mid).generate(rng)
    }
}

/// Uniform choice between alternatives (backs `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// ---------------------------------------------------------------------------
// Primitive strategies
// ---------------------------------------------------------------------------

macro_rules! int_range_strategies {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + off) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (s, e) = (*self.start() as i128, *self.end() as i128);
                assert!(s <= e, "empty range strategy");
                let span = (e - s + 1) as u128;
                let off = (rng.next_u64() as u128 % span) as i128;
                (s + off) as $t
            }
        }
    )*};
}

int_range_strategies!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

/// Types with a canonical "any value" strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

pub struct Any<T>(PhantomData<fn() -> T>);

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Character pool for the `".*"` string strategy: ASCII structure
/// characters the parser cares about, plus quoting/escape characters,
/// control bytes, and multi-byte code points.
const STRING_CHARS: &[char] = &[
    'a', 'b', 'f', 'o', 'z', 'A', 'X', 'Z', '0', '1', '9', ' ', '\t', '\n', '\r', '(', ')', '[',
    ']', '{', '}', ',', '.', '|', '\'', '"', '\\', '-', '+', '*', '/', '_', ':', ';', '!', '?',
    '&', '%', '$', '#', '@', '~', '^', '<', '>', '=', '`', '\u{0}', '\u{7f}', 'é', 'λ', '中', '🦀',
];

impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        assert_eq!(
            *self, ".*",
            "the in-tree proptest shim only supports the \".*\" regex strategy"
        );
        let len = rng.below(41) as usize;
        (0..len)
            .map(|_| STRING_CHARS[rng.below(STRING_CHARS.len() as u64) as usize])
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Tuples
// ---------------------------------------------------------------------------

macro_rules! tuple_strategies {
    ($( ($($s:ident . $idx:tt),+) )+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($( self.$idx.generate(rng), )+)
            }
        }
    )+};
}

tuple_strategies! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

// ---------------------------------------------------------------------------
// Collections
// ---------------------------------------------------------------------------

/// Element-count bound for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    pub lo: usize,
    pub hi_inclusive: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_inclusive: n,
        }
    }
}

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi_inclusive - self.size.lo + 1) as u64;
        let len = self.size.lo + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Namespace mirror of `proptest::prop` (`prop::collection::vec`).
pub mod prop {
    pub mod collection {
        use super::super::{SizeRange, Strategy, VecStrategy};

        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Config + errors
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// Case count after applying the `PROPTEST_CASES` env override.
    pub fn effective_cases(&self) -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|s| s.trim().parse::<u32>().ok())
            .unwrap_or(self.cases)
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

#[derive(Debug, Clone)]
pub enum TestCaseError {
    Fail(String),
    Reject(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "test case failed: {m}"),
            TestCaseError::Reject(m) => write!(f, "test case rejected: {m}"),
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(::std::vec![
            $( $crate::Strategy::boxed($arm) ),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!(
            $cond,
            concat!("assertion failed: ", stringify!($cond))
        )
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "prop_assert_eq! failed: {} != {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                __l,
                __r
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "prop_assert_ne! failed: both sides are {:?}",
                __l
            )));
        }
    }};
}

/// Entry point mirroring `proptest::proptest!`: an optional
/// `#![proptest_config(...)]` header followed by `#[test]` functions
/// whose parameters are `name in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_fns! { cfg = ($cfg); $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_fns! {
            cfg = ($crate::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( cfg = ($cfg:expr); ) => {};
    (
        cfg = ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident ( $($params:tt)* ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        #[allow(unreachable_code, unused_mut, clippy::redundant_closure_call)]
        fn $name() {
            $crate::__proptest_case! {
                cfg = ($cfg);
                name = $name;
                body = $body;
                pats = [];
                strats = [];
                rest = [ $($params)* ]
            }
        }
        $crate::__proptest_fns! { cfg = ($cfg); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_case {
    // All parameters consumed: emit the case loop.
    (
        cfg = ($cfg:expr);
        name = $name:ident;
        body = $body:block;
        pats = [ $( ($pat:pat) )* ];
        strats = [ $( ($strat:expr) )* ];
        rest = [ ]
    ) => {{
        let __config: $crate::ProptestConfig = $cfg;
        let mut __rng = $crate::TestRng::for_test(concat!(
            module_path!(),
            "::",
            stringify!($name)
        ));
        let __seed = __rng.seed();
        for __case in 0..__config.effective_cases() {
            let __vals = ( $( $crate::Strategy::generate(&($strat), &mut __rng), )* );
            let __result: ::std::result::Result<(), $crate::TestCaseError> =
                (move || {
                    let ( $( $pat, )* ) = __vals;
                    { $body }
                    ::std::result::Result::Ok(())
                })();
            match __result {
                ::std::result::Result::Ok(()) => {}
                ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => {}
                ::std::result::Result::Err($crate::TestCaseError::Fail(__msg)) => {
                    panic!(
                        "proptest failure (seed={}, case {}): {}",
                        __seed, __case, __msg
                    );
                }
            }
        }
    }};
    // `mut name in strategy, <more>`
    (
        cfg = ($cfg:expr);
        name = $name:ident;
        body = $body:block;
        pats = [ $($pats:tt)* ];
        strats = [ $($strats:tt)* ];
        rest = [ mut $p:ident in $s:expr, $($rest:tt)* ]
    ) => {
        $crate::__proptest_case! {
            cfg = ($cfg);
            name = $name;
            body = $body;
            pats = [ $($pats)* (mut $p) ];
            strats = [ $($strats)* ($s) ];
            rest = [ $($rest)* ]
        }
    };
    // `mut name in strategy` (final, no trailing comma)
    (
        cfg = ($cfg:expr);
        name = $name:ident;
        body = $body:block;
        pats = [ $($pats:tt)* ];
        strats = [ $($strats:tt)* ];
        rest = [ mut $p:ident in $s:expr ]
    ) => {
        $crate::__proptest_case! {
            cfg = ($cfg);
            name = $name;
            body = $body;
            pats = [ $($pats)* (mut $p) ];
            strats = [ $($strats)* ($s) ];
            rest = [ ]
        }
    };
    // `name in strategy, <more>`
    (
        cfg = ($cfg:expr);
        name = $name:ident;
        body = $body:block;
        pats = [ $($pats:tt)* ];
        strats = [ $($strats:tt)* ];
        rest = [ $p:ident in $s:expr, $($rest:tt)* ]
    ) => {
        $crate::__proptest_case! {
            cfg = ($cfg);
            name = $name;
            body = $body;
            pats = [ $($pats)* ($p) ];
            strats = [ $($strats)* ($s) ];
            rest = [ $($rest)* ]
        }
    };
    // `name in strategy` (final, no trailing comma)
    (
        cfg = ($cfg:expr);
        name = $name:ident;
        body = $body:block;
        pats = [ $($pats:tt)* ];
        strats = [ $($strats:tt)* ];
        rest = [ $p:ident in $s:expr ]
    ) => {
        $crate::__proptest_case! {
            cfg = ($cfg);
            name = $name;
            body = $body;
            pats = [ $($pats)* ($p) ];
            strats = [ $($strats)* ($s) ];
            rest = [ ]
        }
    };
}

// ---------------------------------------------------------------------------
// Prelude
// ---------------------------------------------------------------------------

pub mod prelude {
    pub use crate::prop;
    pub use crate::{
        any, Any, Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestRng,
    };
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

// ---------------------------------------------------------------------------
// Self-tests
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(7);
        for _ in 0..1000 {
            let v = Strategy::generate(&(0u8..4), &mut rng);
            assert!(v < 4);
            let w = Strategy::generate(&(-3i32..=3), &mut rng);
            assert!((-3..=3).contains(&w));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = TestRng::new(99);
        let mut b = TestRng::new(99);
        let s = prop::collection::vec(0i64..100, 0..25);
        for _ in 0..50 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }

    #[test]
    fn recursive_strategy_terminates() {
        #[derive(Debug, Clone)]
        enum T {
            Leaf(i16),
            Node(Vec<T>),
        }
        fn depth(t: &T) -> usize {
            match t {
                T::Leaf(_) => 1,
                T::Node(k) => 1 + k.iter().map(depth).max().unwrap_or(0),
            }
        }
        fn max_leaf(t: &T) -> i64 {
            match t {
                T::Leaf(v) => i64::from(*v),
                T::Node(k) => k.iter().map(max_leaf).max().unwrap_or(i64::MIN),
            }
        }
        let strat = any::<i16>()
            .prop_map(T::Leaf)
            .prop_recursive(4, 24, 4, |inner| {
                prop::collection::vec(inner, 0..4).prop_map(T::Node)
            });
        let mut rng = TestRng::new(3);
        let mut saw_node = false;
        for _ in 0..200 {
            let t = strat.generate(&mut rng);
            assert!(depth(&t) <= 5);
            assert!(max_leaf(&t) <= i64::from(i16::MAX));
            saw_node |= matches!(t, T::Node(_));
        }
        assert!(saw_node, "recursion arm never taken");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The macro front-end itself: mut params, trailing comma,
        /// tuples, flat_map, oneof, and `?` all compose.
        #[test]
        fn macro_front_end(
            mut xs in prop::collection::vec(0i64..100, 0..10),
            pair in (0u8..4, -3i32..=3),
            flag in any::<bool>(),
            word in prop_oneof![Just("a".to_owned()), Just("b".to_owned())],
            n in 2usize..=5,
        ) {
            xs.sort();
            prop_assert!(xs.windows(2).all(|w| w[0] <= w[1]));
            prop_assert!(pair.0 < 4 && (-3..=3).contains(&pair.1));
            prop_assert!(u8::from(flag) <= 1);
            prop_assert!(word == "a" || word == "b");
            prop_assert!((2..=5).contains(&n));
            let parsed: i64 = "17"
                .parse()
                .map_err(|e| TestCaseError::fail(format!("{e}")))?;
            prop_assert_eq!(parsed, 17);
            prop_assert_ne!(parsed, 18);
        }

        #[test]
        fn string_strategy_is_arbitrary(input in ".*") {
            prop_assert!(input.chars().count() <= 40);
        }
    }
}
